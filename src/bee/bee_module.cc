#include "bee/bee_module.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/stat.h>

#include "storage/tuple.h"

namespace microspec::bee {

namespace {

/// Adapter exposing a relation bee's GCL routine as a TupleDeformer.
class GclDeformer final : public TupleDeformer {
 public:
  explicit GclDeformer(RelationBeeState* state) : state_(state) {}

  void Deform(const char* tuple, int natts, Datum* values,
              bool* isnull) const override {
    // Prefer the natively compiled routine on the fast (no NULLs) path; the
    // program backend handles the NULL slow path and serves as fallback.
    // The acquire load is the forge's swap-in point: a scan racing a
    // promotion keeps using the program tier and picks up the native
    // routine on its next tuple. The tier counters feed the forge's
    // hotness-ordered compile queue.
    TupleBeeManager* bees = state_->tuple_bees();
    NativeGclFn native = state_->native_gcl();
    // Per-call latency timing costs two clock reads per tuple, so it only
    // runs when the process-wide telemetry flag is up; the flag itself is a
    // relaxed load, cheap enough for this per-tuple path.
    const bool timed = telemetry::Enabled();
    const uint64_t t0 = timed ? telemetry::NowNs() : 0;
    if (native != nullptr &&
        (static_cast<uint8_t>(tuple[2]) & kTupleHasNulls) == 0) {
      state_->BumpNativeTier();
      workops::Bump(2 * static_cast<uint64_t>(natts));
      native(tuple, natts, values, reinterpret_cast<char*>(isnull),
             bees != nullptr ? bees->datum_table() : nullptr);
      if (timed) state_->native_deform_ns()->Observe(telemetry::NowNs() - t0);
      return;
    }
    state_->BumpProgramTier();
    state_->gcl().Execute(tuple, natts, values, isnull, bees);
    if (timed) state_->program_deform_ns()->Observe(telemetry::NowNs() - t0);
  }

  /// GCL-B: deforms all live tuples of one pinned page in a single call.
  /// The native batch routine (like its scalar sibling) assumes the
  /// no-nulls fixed layout, so one header-flag sweep decides the tier for
  /// the whole page; a page carrying any NULL tuple runs the program-tier
  /// batch loop, which handles mixed pages tuple by tuple.
  void DeformBatch(const char* const* tuples, int ntuples, int natts,
                   Datum* const* cols, bool* const* nulls) const override {
    if (ntuples <= 0) return;
    TupleBeeManager* bees = state_->tuple_bees();
    NativeGclBatchFn native = state_->native_gcl_batch();
    const bool timed = telemetry::Enabled();
    const uint64_t t0 = timed ? telemetry::NowNs() : 0;
    if (native != nullptr) {
      bool clean = true;
      for (int r = 0; r < ntuples; ++r) {
        if ((static_cast<uint8_t>(tuples[r][2]) & kTupleHasNulls) != 0) {
          clean = false;
          break;
        }
      }
      if (clean) {
        state_->BumpNativeBatchTier(static_cast<uint64_t>(ntuples));
        // One batch dispatch for the page; the scalar native tier pays
        // 2*natts per tuple, the page loop amortizes half of that away.
        workops::Bump(2 + static_cast<uint64_t>(natts) *
                              static_cast<uint64_t>(ntuples));
        std::vector<char*> nullp(static_cast<size_t>(natts));
        for (int c = 0; c < natts; ++c) {
          nullp[static_cast<size_t>(c)] = reinterpret_cast<char*>(nulls[c]);
        }
        native(tuples, ntuples, natts, cols, nullp.data(),
               bees != nullptr ? bees->datum_table() : nullptr);
        if (timed) {
          state_->native_deform_ns()->Observe(telemetry::NowNs() - t0);
        }
        return;
      }
    }
    state_->BumpProgramBatchTier(static_cast<uint64_t>(ntuples));
    state_->gcl().ExecuteBatch(tuples, ntuples, natts, cols, nulls, bees);
    if (timed) state_->program_deform_ns()->Observe(telemetry::NowNs() - t0);
  }

 private:
  RelationBeeState* state_;
};

/// Adapter exposing SCL (+ tuple-bee creation) as a TupleFormer.
class SclFormer final : public TupleFormer {
 public:
  explicit SclFormer(RelationBeeState* state) : state_(state) {}

  Status FormTuple(const Datum* values, const bool* isnull,
                   std::string* out) const override {
    state_->BumpProgramTier();  // SCL always runs on the program tier
    uint8_t bee_id = 0;
    bool has_bee = false;
    TupleBeeManager* bees = state_->tuple_bees();
    if (bees != nullptr) {
      // Specialized attributes must be NOT NULL (annotation contract).
      for (int c : state_->spec_cols()) {
        if (isnull != nullptr && isnull[c]) {
          return Status::InvalidArgument(
              "NULL in a tuple-bee specialized column");
        }
      }
      MICROSPEC_ASSIGN_OR_RETURN(bee_id, bees->Intern(values));
      has_bee = true;
    }
    if (state_->scl().applicable(isnull)) {
      state_->scl().Execute(values, bee_id, has_bee, out);
      return Status::OK();
    }
    // NULL-carrying tuples use the null-aware specialized variant (bitmap
    // writes folded in, offsets still resolved at bee-creation time).
    state_->scl().ExecuteNullable(values, isnull, bee_id, has_bee, out);
    return Status::OK();
  }

 private:
  RelationBeeState* state_;
};

void EnsureDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}
bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

constexpr uint32_t kBeeCacheMagic = 0xBEEC0DEu;

}  // namespace

RelationBeeState::RelationBeeState(TableInfo* table,
                                   std::vector<int> spec_cols)
    : table_(table),
      name_(table->name()),
      spec_cols_(std::move(spec_cols)),
      // Value copy: forge workers verify/compile against this schema and
      // must not chase the TableInfo, which dies with a DROP TABLE.
      logical_(table->schema()) {
  std::vector<Column> stored_cols;
  for (int i = 0; i < logical_.natts(); ++i) {
    bool spec = false;
    for (int c : spec_cols_) spec = spec || (c == i);
    if (!spec) stored_cols.push_back(logical_.column(i));
  }
  stored_ = Schema(std::move(stored_cols));
}

Status RelationBeeState::Build(const BeeModuleOptions& options) {
  gcl_ = DeformProgram::Compile(logical_, stored_, spec_cols_);
  scl_ = FormProgram::Compile(logical_, stored_, spec_cols_);
  log_applier_ = LogApplierProgram::Compile(stored_, !spec_cols_.empty());
  if (!spec_cols_.empty()) {
    bees_ = std::make_unique<TupleBeeManager>(&logical_, spec_cols_);
  }
  if (options.backend == BeeBackend::kNative &&
      NativeJit::CompilerAvailable()) {
    // Source generation is cheap string work and happens here, on the DDL
    // thread; verification, the compiler invocation, and the dlopen are the
    // forge's job (bee/forge.h) and never block CREATE TABLE in async mode.
    // The log applier rides in the same translation unit so the triple
    // (scalar GCL, GCL-B, log applier) ships and publishes atomically.
    native_symbol_ = "bee_gcl_t" + std::to_string(table_->id());
    native_source_ = NativeJit::GenerateGclSource(logical_, stored_,
                                                  spec_cols_, native_symbol_);
    native_source_ += NativeJit::GenerateLogApplierSource(
        stored_, !spec_cols_.empty(), native_symbol_);
  }
  // Static verification of the program tier before its routines become
  // reachable: a bad bee is a silent data-corruption bug, so a reject
  // refuses installation under kEnforce and degrades to a loud warning
  // under kWarn. The native source is linted off-thread by the forge under
  // the same mode right before compilation.
  if (options.verify != VerifyMode::kOff) {
    Status st = BeeVerifier::VerifyDeform(gcl_, logical_, stored_, spec_cols_);
    if (st.ok()) {
      st = BeeVerifier::VerifyForm(scl_, logical_, stored_, spec_cols_);
    }
    if (!st.ok()) {
      // Rejections surface through telemetry (counter + trace event), not
      // stderr; under kEnforce the relation bee is refused outright.
      if (BeeVerifier::ReportReject("relation", name_, st, options.verify)) {
        return Status(st.code(), "relation bee for '" + name_ +
                                     "' rejected: " + st.message());
      }
    }
    // The log applier answers to its own verifier family: a wrong constant
    // here re-installs corrupt tuples during redo rather than misreading
    // them during scans, so it is never installed unverified either.
    Status lst = BeeVerifier::VerifyLogApplier(log_applier_.steps(), logical_,
                                               stored_, spec_cols_);
    if (!lst.ok()) {
      if (BeeVerifier::ReportReject("logapp", name_, lst, options.verify)) {
        return Status(lst.code(), "log bee for '" + name_ +
                                      "' rejected: " + lst.message());
      }
    }
  }
  deformer_ = std::make_unique<GclDeformer>(this);
  former_ = std::make_unique<SclFormer>(this);
  return Status::OK();
}

BeeModule::BeeModule(BeeModuleOptions options)
    : options_(std::move(options)),
      placement_(options_.placement_isolation) {
  if (!options_.cache_dir.empty()) EnsureDir(options_.cache_dir);
  if (options_.backend == BeeBackend::kNative &&
      NativeJit::CompilerAvailable()) {
    forge_ = std::make_unique<Forge>(&jit_, options_.verify,
                                     options_.cache_dir, options_.forge);
  }
}

BeeModule::~BeeModule() = default;

Status BeeModule::CreateRelationBees(TableInfo* table,
                                     bool enable_tuple_bees) {
  std::vector<int> spec_cols;
  if (enable_tuple_bees) {
    const Schema& s = table->schema();
    for (int i = 0; i < s.natts(); ++i) {
      if (s.column(i).low_cardinality() && s.column(i).not_null()) {
        spec_cols.push_back(i);
      }
    }
  }
  auto state = std::make_shared<RelationBeeState>(table, std::move(spec_cols));
  MICROSPEC_RETURN_NOT_OK(state->Build(options_));
  {
    std::unique_lock<std::shared_mutex> guard(mutex_);
    states_[table->id()] = state;
  }
  // Outside the catalog-facing lock: DDL holds mutex_ only for the map
  // insert, never across forge scheduling (which in sync mode compiles).
  ScheduleNative(state);
  return Status::OK();
}

void BeeModule::ScheduleNative(
    const std::shared_ptr<RelationBeeState>& state) {
  if (forge_ == nullptr || state->native_source().empty()) return;
  forge_->Enqueue(state);
}

void BeeModule::CollectTable(TableId id) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  auto it = states_.find(id);
  if (it == states_.end()) return;
  // A forge job may still hold a reference; the flag turns its eventual
  // verify/compile/publish into a no-op.
  it->second->MarkCollected();
  states_.erase(it);
}

RelationBeeState* BeeModule::StateFor(TableId id) {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second.get();
}

void BeeModule::Quiesce() {
  if (forge_ != nullptr) forge_->Quiesce();
}

const TupleDeformer* BeeModule::DeformerFor(TableInfo* table,
                                            const SessionOptions& opts) {
  RelationBeeState* state = StateFor(table->id());
  if (state == nullptr) return nullptr;
  // Relations with tuple bees cannot be read by the generic loop: their
  // stored layout omits the specialized attributes. GCL is mandatory there.
  if (state->has_tuple_bees()) return state->deformer();
  return opts.enable_gcl ? state->deformer() : nullptr;
}

const TupleFormer* BeeModule::FormerFor(TableInfo* table,
                                        const SessionOptions& opts) {
  RelationBeeState* state = StateFor(table->id());
  if (state == nullptr) return nullptr;
  if (state->has_tuple_bees()) return state->former();
  return opts.enable_scl ? state->former() : nullptr;
}

std::unique_ptr<PredicateEvaluator> BeeModule::SpecializePredicate(
    const Expr& expr, const SessionOptions& opts,
    const std::vector<ColMeta>* input_meta) {
  if (!opts.enable_evp) return nullptr;
  std::unique_ptr<PredicateEvaluator> bee = TrySpecializePredicateChecked(
      expr, &placement_, /*input_nullable=*/true, input_meta,
      options_.verify);
  if (bee != nullptr) evp_created_.fetch_add(1, std::memory_order_relaxed);
  return bee;
}

std::unique_ptr<JoinKeyEvaluator> BeeModule::SpecializeJoinKeys(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, const SessionOptions& opts,
    int outer_width, int inner_width) {
  if (!opts.enable_evj) return nullptr;
  std::unique_ptr<JoinKeyEvaluator> bee = TrySpecializeJoinKeysChecked(
      outer_cols, inner_cols, key_meta, &placement_, outer_width,
      inner_width, options_.verify);
  if (bee != nullptr) evj_created_.fetch_add(1, std::memory_order_relaxed);
  return bee;
}

Status BeeModule::SaveCache() const {
  if (options_.cache_dir.empty()) return Status::OK();
  std::string out;
  PutU32(&out, kBeeCacheMagic);
  std::shared_lock<std::shared_mutex> guard(mutex_);
  PutU32(&out, static_cast<uint32_t>(states_.size()));
  for (const auto& [id, state] : states_) {
    PutU32(&out, id);
    PutU64(&out, state->table()->schema().LayoutFingerprint());
    PutU32(&out, static_cast<uint32_t>(state->spec_cols().size()));
    for (int c : state->spec_cols()) PutU32(&out, static_cast<uint32_t>(c));
    const TupleBeeManager* bees = state->tuple_bees();
    uint32_t nsec =
        bees == nullptr ? 0 : static_cast<uint32_t>(bees->num_sections());
    PutU32(&out, nsec);
    for (uint32_t i = 0; i < nsec; ++i) {
      const DataSection* s = bees->section(static_cast<uint8_t>(i));
      PutU32(&out, static_cast<uint32_t>(s->blob.size()));
      out.append(s->blob);
    }
  }
  std::ofstream f(options_.cache_dir + "/beecache.msb", std::ios::binary);
  if (!f) return Status::IoError("cannot write bee cache");
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  return f.good() ? Status::OK() : Status::IoError("bee cache write failed");
}

Status BeeModule::LoadCache(Catalog* catalog, bool enable_tuple_bees) {
  (void)enable_tuple_bees;
  std::ifstream f(options_.cache_dir + "/beecache.msb", std::ios::binary);
  if (!f) return Status::NotFound("no bee cache");
  std::string in((std::istreambuf_iterator<char>(f)),
                 std::istreambuf_iterator<char>());
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!GetU32(in, &pos, &magic) || magic != kBeeCacheMagic ||
      !GetU32(in, &pos, &count)) {
    return Status::Corruption("bee cache header");
  }
  for (uint32_t t = 0; t < count; ++t) {
    uint32_t id = 0;
    uint64_t fp = 0;
    uint32_t nspec = 0;
    if (!GetU32(in, &pos, &id) || !GetU64(in, &pos, &fp) ||
        !GetU32(in, &pos, &nspec)) {
      return Status::Corruption("bee cache entry");
    }
    std::vector<int> spec_cols;
    for (uint32_t i = 0; i < nspec; ++i) {
      uint32_t c = 0;
      if (!GetU32(in, &pos, &c)) return Status::Corruption("bee cache spec");
      spec_cols.push_back(static_cast<int>(c));
    }
    uint32_t nsec = 0;
    if (!GetU32(in, &pos, &nsec)) return Status::Corruption("bee cache nsec");
    TableInfo* table = catalog->GetTable(static_cast<TableId>(id));
    if (table == nullptr) {
      return Status::Corruption("bee cache references unknown table");
    }
    // Bee Reconstruction: schema changed since the cache was written means
    // the bee must be rebuilt from scratch; sections cannot be trusted.
    if (table->schema().LayoutFingerprint() != fp) {
      return Status::Corruption("bee cache fingerprint mismatch");
    }
    auto state = std::make_shared<RelationBeeState>(table, spec_cols);
    MICROSPEC_RETURN_NOT_OK(state->Build(options_));
    for (uint32_t i = 0; i < nsec; ++i) {
      uint32_t len = 0;
      if (!GetU32(in, &pos, &len) || pos + len > in.size()) {
        return Status::Corruption("bee cache section");
      }
      MICROSPEC_RETURN_NOT_OK(
          state->tuple_bees()->RestoreSection(in.substr(pos, len)));
      pos += len;
    }
    {
      std::unique_lock<std::shared_mutex> guard(mutex_);
      states_[static_cast<TableId>(id)] = state;
    }
    // Bee Reconstruction re-enters the promotion pipeline: reloaded
    // relations start on the program tier and regain native code async.
    ScheduleNative(state);
  }
  return Status::OK();
}

BeeStats BeeModule::stats() const {
  BeeStats s;
  // Forge snapshot first: its mutex is never taken while mutex_ is held (nor
  // vice versa), keeping the two services free of lock-order coupling.
  if (forge_ != nullptr) s.forge = forge_->stats();
  std::shared_lock<std::shared_mutex> guard(mutex_);
  for (const auto& [id, state] : states_) {
    (void)id;
    ++s.relation_bees;
    if (state->has_native_gcl()) ++s.native_gcl_routines;
    s.program_tier_invocations += state->program_tier_invocations();
    s.native_tier_invocations += state->native_tier_invocations();
    s.program_batch_tier_invocations += state->program_batch_calls();
    s.native_batch_tier_invocations += state->native_batch_calls();
    TupleBeeManager* bees = state->tuple_bees();
    if (bees != nullptr) {
      ++s.tuple_bee_relations;
      s.tuple_sections += bees->num_sections();
      s.section_bytes += bees->section_bytes();
    }
  }
  s.evp_bees_created = evp_created_.load(std::memory_order_relaxed);
  s.evj_bees_created = evj_created_.load(std::memory_order_relaxed);
  return s;
}

void BeeModule::FillTelemetry(telemetry::TelemetrySnapshot* snap) const {
  BeeStats agg = stats();
  snap->AddCounter("microspec_bee_tier_invocations_total",
                   static_cast<double>(agg.program_tier_invocations),
                   {{"tier", "program"}});
  snap->AddCounter("microspec_bee_tier_invocations_total",
                   static_cast<double>(agg.native_tier_invocations),
                   {{"tier", "native"}});
  // GCL-B page-batch calls (each covering a whole page; the per-tuple share
  // is already folded into the program/native tier counters above).
  snap->AddCounter("microspec_bee_batch_calls_total",
                   static_cast<double>(agg.program_batch_tier_invocations),
                   {{"tier", "program"}});
  snap->AddCounter("microspec_bee_batch_calls_total",
                   static_cast<double>(agg.native_batch_tier_invocations),
                   {{"tier", "native"}});
  snap->AddGauge("microspec_bee_relation_bees", agg.relation_bees);
  snap->AddGauge("microspec_bee_native_gcl_routines", agg.native_gcl_routines);
  snap->AddCounter("microspec_bee_evp_created_total",
                   static_cast<double>(agg.evp_bees_created));
  snap->AddCounter("microspec_bee_evj_created_total",
                   static_cast<double>(agg.evj_bees_created));
  snap->AddCounter("microspec_forge_enqueued_total",
                   static_cast<double>(agg.forge.enqueued));
  snap->AddCounter("microspec_forge_promotions_total",
                   static_cast<double>(agg.forge.promotions));
  snap->AddCounter("microspec_forge_retries_total",
                   static_cast<double>(agg.forge.retries));
  snap->AddCounter("microspec_forge_failures_total",
                   static_cast<double>(agg.forge.failures));
  snap->AddCounter("microspec_forge_pinned_total",
                   static_cast<double>(agg.forge.pinned));
  snap->AddCounter("microspec_forge_cancelled_total",
                   static_cast<double>(agg.forge.cancelled));
  snap->AddCounter("microspec_forge_compile_seconds_total",
                   agg.forge.compile_seconds_total);

  std::shared_lock<std::shared_mutex> guard(mutex_);
  for (const auto& [id, state] : states_) {
    (void)id;
    const std::string& rel = state->table_name();
    snap->AddCounter("microspec_bee_relation_invocations_total",
                     static_cast<double>(state->program_tier_invocations()),
                     {{"relation", rel}, {"tier", "program"}});
    snap->AddCounter("microspec_bee_relation_invocations_total",
                     static_cast<double>(state->native_tier_invocations()),
                     {{"relation", rel}, {"tier", "native"}});
    snap->AddCounter("microspec_bee_relation_batch_calls_total",
                     static_cast<double>(state->program_batch_calls()),
                     {{"relation", rel}, {"tier", "program"}});
    snap->AddCounter("microspec_bee_relation_batch_calls_total",
                     static_cast<double>(state->native_batch_calls()),
                     {{"relation", rel}, {"tier", "native"}});
    snap->AddGauge("microspec_bee_forge_phase",
                   static_cast<double>(state->forge_phase()),
                   {{"relation", rel},
                    {"phase", ForgePhaseName(state->forge_phase())}});
    telemetry::Histogram::Snapshot prog = state->program_deform_ns()->Snap();
    if (!prog.empty()) {
      snap->AddHistogram("microspec_bee_deform_latency_ns", prog,
                         {{"relation", rel}, {"tier", "program"}});
    }
    telemetry::Histogram::Snapshot nat = state->native_deform_ns()->Snap();
    if (!nat.empty()) {
      snap->AddHistogram("microspec_bee_deform_latency_ns", nat,
                         {{"relation", rel}, {"tier", "native"}});
    }
  }
}

}  // namespace microspec::bee
