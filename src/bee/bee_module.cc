#include "bee/bee_module.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/stat.h>

#include "storage/tuple.h"

namespace microspec::bee {

namespace {

/// Adapter exposing a relation bee's GCL routine as a TupleDeformer.
class GclDeformer final : public TupleDeformer {
 public:
  explicit GclDeformer(RelationBeeState* state) : state_(state) {}

  void Deform(const char* tuple, int natts, Datum* values,
              bool* isnull) const override {
    // Prefer the natively compiled routine on the fast (no NULLs) path; the
    // program backend handles the NULL slow path and serves as fallback.
    TupleBeeManager* bees = state_->tuple_bees();
    if (state_->native_gcl() != nullptr &&
        (static_cast<uint8_t>(tuple[2]) & kTupleHasNulls) == 0) {
      workops::Bump(2 * static_cast<uint64_t>(natts));
      state_->native_gcl()(tuple, natts, values,
                           reinterpret_cast<char*>(isnull),
                           bees != nullptr ? bees->datum_table() : nullptr);
      return;
    }
    state_->gcl().Execute(tuple, natts, values, isnull, bees);
  }

 private:
  RelationBeeState* state_;
};

/// Adapter exposing SCL (+ tuple-bee creation) as a TupleFormer.
class SclFormer final : public TupleFormer {
 public:
  explicit SclFormer(RelationBeeState* state) : state_(state) {}

  Status FormTuple(const Datum* values, const bool* isnull,
                   std::string* out) const override {
    uint8_t bee_id = 0;
    bool has_bee = false;
    TupleBeeManager* bees = state_->tuple_bees();
    if (bees != nullptr) {
      // Specialized attributes must be NOT NULL (annotation contract).
      for (int c : state_->spec_cols()) {
        if (isnull != nullptr && isnull[c]) {
          return Status::InvalidArgument(
              "NULL in a tuple-bee specialized column");
        }
      }
      MICROSPEC_ASSIGN_OR_RETURN(bee_id, bees->Intern(values));
      has_bee = true;
    }
    if (state_->scl().applicable(isnull)) {
      state_->scl().Execute(values, bee_id, has_bee, out);
      return Status::OK();
    }
    // NULL-carrying tuples use the null-aware specialized variant (bitmap
    // writes folded in, offsets still resolved at bee-creation time).
    state_->scl().ExecuteNullable(values, isnull, bee_id, has_bee, out);
    return Status::OK();
  }

 private:
  RelationBeeState* state_;
};

void EnsureDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}
bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

constexpr uint32_t kBeeCacheMagic = 0xBEEC0DEu;

}  // namespace

RelationBeeState::RelationBeeState(TableInfo* table,
                                   std::vector<int> spec_cols)
    : table_(table), spec_cols_(std::move(spec_cols)) {
  std::vector<Column> stored_cols;
  const Schema& logical = table->schema();
  for (int i = 0; i < logical.natts(); ++i) {
    bool spec = false;
    for (int c : spec_cols_) spec = spec || (c == i);
    if (!spec) stored_cols.push_back(logical.column(i));
  }
  stored_ = Schema(std::move(stored_cols));
}

Status RelationBeeState::Build(const BeeModuleOptions& options,
                               NativeJit* jit) {
  const Schema& logical = table_->schema();
  gcl_ = DeformProgram::Compile(logical, stored_, spec_cols_);
  scl_ = FormProgram::Compile(logical, stored_, spec_cols_);
  if (!spec_cols_.empty()) {
    bees_ = std::make_unique<TupleBeeManager>(&logical, spec_cols_);
  }
  if (options.backend == BeeBackend::kNative &&
      NativeJit::CompilerAvailable()) {
    std::string symbol = "bee_gcl_t" + std::to_string(table_->id());
    native_source_ =
        NativeJit::GenerateGclSource(logical, stored_, spec_cols_, symbol);
    Result<NativeGclFn> fn = jit->CompileGcl(logical, stored_, spec_cols_,
                                             options.cache_dir, symbol);
    if (fn.ok()) {
      native_gcl_ = fn.value();
    }
    // Compilation failure silently degrades to the program backend.
  }
  // Static verification before the routines become reachable: a bad bee is
  // a silent data-corruption bug, so a reject refuses installation under
  // kEnforce and degrades to a loud warning under kWarn.
  if (options.verify != VerifyMode::kOff) {
    Status st = BeeVerifier::VerifyDeform(gcl_, logical, stored_, spec_cols_);
    if (st.ok()) {
      st = BeeVerifier::VerifyForm(scl_, logical, stored_, spec_cols_);
    }
    if (st.ok() && !native_source_.empty()) {
      st = BeeVerifier::LintNativeGclSource(native_source_, logical, stored_,
                                            spec_cols_);
    }
    if (!st.ok()) {
      if (options.verify == VerifyMode::kEnforce) {
        return Status(st.code(), "relation bee for '" + table_->name() +
                                     "' rejected: " + st.message());
      }
      std::fprintf(stderr, "microspec: bee verifier warning for '%s': %s\n",
                   table_->name().c_str(), st.ToString().c_str());
    }
  }
  deformer_ = std::make_unique<GclDeformer>(this);
  former_ = std::make_unique<SclFormer>(this);
  return Status::OK();
}

BeeModule::BeeModule(BeeModuleOptions options)
    : options_(std::move(options)),
      placement_(options_.placement_isolation) {
  if (!options_.cache_dir.empty()) EnsureDir(options_.cache_dir);
}

BeeModule::~BeeModule() = default;

Status BeeModule::CreateRelationBees(TableInfo* table,
                                     bool enable_tuple_bees) {
  std::vector<int> spec_cols;
  if (enable_tuple_bees) {
    const Schema& s = table->schema();
    for (int i = 0; i < s.natts(); ++i) {
      if (s.column(i).low_cardinality() && s.column(i).not_null()) {
        spec_cols.push_back(i);
      }
    }
  }
  auto state = std::make_unique<RelationBeeState>(table, std::move(spec_cols));
  MICROSPEC_RETURN_NOT_OK(state->Build(options_, &jit_));
  std::unique_lock<std::shared_mutex> guard(mutex_);
  states_[table->id()] = std::move(state);
  return Status::OK();
}

void BeeModule::CollectTable(TableId id) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  states_.erase(id);
}

RelationBeeState* BeeModule::StateFor(TableId id) {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : it->second.get();
}

const TupleDeformer* BeeModule::DeformerFor(TableInfo* table,
                                            const SessionOptions& opts) {
  RelationBeeState* state = StateFor(table->id());
  if (state == nullptr) return nullptr;
  // Relations with tuple bees cannot be read by the generic loop: their
  // stored layout omits the specialized attributes. GCL is mandatory there.
  if (state->has_tuple_bees()) return state->deformer();
  return opts.enable_gcl ? state->deformer() : nullptr;
}

const TupleFormer* BeeModule::FormerFor(TableInfo* table,
                                        const SessionOptions& opts) {
  RelationBeeState* state = StateFor(table->id());
  if (state == nullptr) return nullptr;
  if (state->has_tuple_bees()) return state->former();
  return opts.enable_scl ? state->former() : nullptr;
}

std::unique_ptr<PredicateEvaluator> BeeModule::SpecializePredicate(
    const Expr& expr, const SessionOptions& opts) {
  if (!opts.enable_evp) return nullptr;
  std::unique_ptr<PredicateEvaluator> bee =
      TrySpecializePredicate(expr, &placement_, /*input_nullable=*/true);
  if (bee != nullptr) ++evp_created_;
  return bee;
}

std::unique_ptr<JoinKeyEvaluator> BeeModule::SpecializeJoinKeys(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, const SessionOptions& opts) {
  if (!opts.enable_evj) return nullptr;
  std::unique_ptr<JoinKeyEvaluator> bee =
      TrySpecializeJoinKeys(outer_cols, inner_cols, key_meta, &placement_);
  if (bee != nullptr) ++evj_created_;
  return bee;
}

Status BeeModule::SaveCache() const {
  if (options_.cache_dir.empty()) return Status::OK();
  std::string out;
  PutU32(&out, kBeeCacheMagic);
  std::shared_lock<std::shared_mutex> guard(mutex_);
  PutU32(&out, static_cast<uint32_t>(states_.size()));
  for (const auto& [id, state] : states_) {
    PutU32(&out, id);
    PutU64(&out, state->table()->schema().LayoutFingerprint());
    PutU32(&out, static_cast<uint32_t>(state->spec_cols().size()));
    for (int c : state->spec_cols()) PutU32(&out, static_cast<uint32_t>(c));
    const TupleBeeManager* bees =
        const_cast<RelationBeeState*>(state.get())->tuple_bees();
    uint32_t nsec =
        bees == nullptr ? 0 : static_cast<uint32_t>(bees->num_sections());
    PutU32(&out, nsec);
    for (uint32_t i = 0; i < nsec; ++i) {
      const DataSection* s = bees->section(static_cast<uint8_t>(i));
      PutU32(&out, static_cast<uint32_t>(s->blob.size()));
      out.append(s->blob);
    }
  }
  std::ofstream f(options_.cache_dir + "/beecache.msb", std::ios::binary);
  if (!f) return Status::IoError("cannot write bee cache");
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  return f.good() ? Status::OK() : Status::IoError("bee cache write failed");
}

Status BeeModule::LoadCache(Catalog* catalog, bool enable_tuple_bees) {
  (void)enable_tuple_bees;
  std::ifstream f(options_.cache_dir + "/beecache.msb", std::ios::binary);
  if (!f) return Status::NotFound("no bee cache");
  std::string in((std::istreambuf_iterator<char>(f)),
                 std::istreambuf_iterator<char>());
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!GetU32(in, &pos, &magic) || magic != kBeeCacheMagic ||
      !GetU32(in, &pos, &count)) {
    return Status::Corruption("bee cache header");
  }
  for (uint32_t t = 0; t < count; ++t) {
    uint32_t id = 0;
    uint64_t fp = 0;
    uint32_t nspec = 0;
    if (!GetU32(in, &pos, &id) || !GetU64(in, &pos, &fp) ||
        !GetU32(in, &pos, &nspec)) {
      return Status::Corruption("bee cache entry");
    }
    std::vector<int> spec_cols;
    for (uint32_t i = 0; i < nspec; ++i) {
      uint32_t c = 0;
      if (!GetU32(in, &pos, &c)) return Status::Corruption("bee cache spec");
      spec_cols.push_back(static_cast<int>(c));
    }
    uint32_t nsec = 0;
    if (!GetU32(in, &pos, &nsec)) return Status::Corruption("bee cache nsec");
    TableInfo* table = catalog->GetTable(static_cast<TableId>(id));
    if (table == nullptr) {
      return Status::Corruption("bee cache references unknown table");
    }
    // Bee Reconstruction: schema changed since the cache was written means
    // the bee must be rebuilt from scratch; sections cannot be trusted.
    if (table->schema().LayoutFingerprint() != fp) {
      return Status::Corruption("bee cache fingerprint mismatch");
    }
    auto state = std::make_unique<RelationBeeState>(table, spec_cols);
    MICROSPEC_RETURN_NOT_OK(state->Build(options_, &jit_));
    for (uint32_t i = 0; i < nsec; ++i) {
      uint32_t len = 0;
      if (!GetU32(in, &pos, &len) || pos + len > in.size()) {
        return Status::Corruption("bee cache section");
      }
      MICROSPEC_RETURN_NOT_OK(
          state->tuple_bees()->RestoreSection(in.substr(pos, len)));
      pos += len;
    }
    std::unique_lock<std::shared_mutex> guard(mutex_);
    states_[static_cast<TableId>(id)] = std::move(state);
  }
  return Status::OK();
}

BeeStats BeeModule::stats() const {
  BeeStats s;
  std::shared_lock<std::shared_mutex> guard(mutex_);
  for (const auto& [id, state] : states_) {
    (void)id;
    ++s.relation_bees;
    if (state->has_native_gcl()) ++s.native_gcl_routines;
    TupleBeeManager* bees =
        const_cast<RelationBeeState*>(state.get())->tuple_bees();
    if (bees != nullptr) {
      ++s.tuple_bee_relations;
      s.tuple_sections += bees->num_sections();
      s.section_bytes += bees->section_bytes();
    }
  }
  s.evp_bees_created = evp_created_;
  s.evj_bees_created = evj_created_;
  return s;
}

}  // namespace microspec::bee
