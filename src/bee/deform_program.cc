#include "bee/deform_program.h"

#include <cstring>

#include "common/align.h"
#include "common/counters.h"
#include "common/macros.h"
#include "storage/tuple.h"

namespace microspec::bee {

namespace {

/// Reads the 6-byte tuple header.
inline TupleHeader ReadHeader(const char* tuple) {
  TupleHeader h;
  std::memcpy(&h, tuple, sizeof(h));
  return h;
}

}  // namespace

DeformProgram DeformProgram::Compile(const Schema& logical,
                                     const Schema& stored,
                                     const std::vector<int>& spec_cols) {
  DeformProgram p;
  p.logical_ = &logical;
  p.stored_ = &stored;
  p.spec_cols_ = spec_cols;
  p.logical_natts_ = logical.natts();
  p.all_not_null_ = !stored.has_nullable();

  // Build logical<->stored/slot maps.
  p.logical_to_stored_.assign(static_cast<size_t>(logical.natts()), -1);
  p.logical_to_slot_.assign(static_cast<size_t>(logical.natts()), -1);
  for (size_t s = 0; s < spec_cols.size(); ++s) {
    p.logical_to_slot_[static_cast<size_t>(spec_cols[s])] =
        static_cast<int>(s);
  }
  int stored_idx = 0;
  for (int i = 0; i < logical.natts(); ++i) {
    if (p.logical_to_slot_[static_cast<size_t>(i)] < 0) {
      p.logical_to_stored_[static_cast<size_t>(i)] = stored_idx++;
    }
  }
  MICROSPEC_CHECK(stored_idx == stored.natts());

  // Lower each logical attribute to a step. Offsets are tracked while the
  // layout prefix is fixed; the first variable-length stored attribute
  // switches to dynamic mode.
  bool fixed_mode = true;
  uint32_t off = 0;
  for (int i = 0; i < logical.natts(); ++i) {
    const Column& c = logical.column(i);
    DeformStep step{};
    step.out = static_cast<uint16_t>(i);
    int slot = p.logical_to_slot_[static_cast<size_t>(i)];
    if (slot >= 0) {
      step.op = DeformOp::kSection;
      step.arg = static_cast<uint32_t>(slot);
      p.steps_.push_back(step);
      p.null_steps_.push_back(step);
      continue;  // specialized columns occupy no tuple storage
    }
    step.stored =
        static_cast<uint16_t>(p.logical_to_stored_[static_cast<size_t>(i)]);
    step.maybe_null = !c.not_null();

    // The null-aware variant uses dynamic ops throughout: a NULL earlier in
    // the tuple shifts every later offset.
    {
      DeformStep ns = step;
      ns.align = static_cast<uint8_t>(c.attalign());
      if (c.byval()) {
        ns.op = c.attlen() == 1   ? DeformOp::kDyn1
                : c.attlen() == 4 ? DeformOp::kDyn4
                                  : DeformOp::kDyn8;
      } else if (c.attlen() == kVariableLength) {
        ns.op = DeformOp::kDynVarlena;
      } else {
        ns.op = DeformOp::kDynChar;
        ns.len = static_cast<uint32_t>(c.attlen());
      }
      p.null_steps_.push_back(ns);
    }

    uint32_t align = static_cast<uint32_t>(c.attalign());
    if (fixed_mode) {
      off = AlignUp32(off, align);
      step.arg = off;
      if (c.byval()) {
        switch (c.attlen()) {
          case 1:
            step.op = DeformOp::kFixed1;
            break;
          case 4:
            step.op = DeformOp::kFixed4;
            break;
          case 8:
            step.op = DeformOp::kFixed8;
            break;
          default:
            MICROSPEC_CHECK(false);
        }
        off += static_cast<uint32_t>(c.attlen());
      } else if (c.attlen() == kVariableLength) {
        step.op = DeformOp::kFixedVarlena;
        fixed_mode = false;  // later offsets depend on this value's length
      } else {
        step.op = DeformOp::kFixedChar;
        step.len = static_cast<uint32_t>(c.attlen());
        off += static_cast<uint32_t>(c.attlen());
      }
    } else {
      step.align = static_cast<uint8_t>(align);
      if (c.byval()) {
        switch (c.attlen()) {
          case 1:
            step.op = DeformOp::kDyn1;
            break;
          case 4:
            step.op = DeformOp::kDyn4;
            break;
          case 8:
            step.op = DeformOp::kDyn8;
            break;
          default:
            MICROSPEC_CHECK(false);
        }
      } else if (c.attlen() == kVariableLength) {
        step.op = DeformOp::kDynVarlena;
      } else {
        step.op = DeformOp::kDynChar;
        step.len = static_cast<uint32_t>(c.attlen());
      }
    }
    p.steps_.push_back(step);
  }
  return p;
}

void DeformProgram::Execute(const char* tuple, int natts, Datum* values,
                            bool* isnull, const TupleBeeManager* bees) const {
  TupleHeader h = ReadHeader(tuple);
  if (MICROSPEC_UNLIKELY((h.flags & kTupleHasNulls) != 0)) {
    ExecuteWithNulls(tuple, natts, values, isnull, bees);
    return;
  }
  // The specialized fast path: Listing 2. isnull is cleared wholesale (the
  // paper's "(long*)isnull = 0" collapse), then straight-line loads run with
  // all offsets and types resolved at bee-creation time.
  if (isnull != nullptr) {
    std::memset(isnull, 0, static_cast<size_t>(natts));
  }
  const char* tp = tuple + h.hoff;
  const DataSection* section = nullptr;
  if (bees != nullptr && (h.flags & kTupleHasBeeId) != 0) {
    section = bees->section(h.bee_id);
  }
  uint32_t off = 0;
  uint64_t ops = 0;
  for (const DeformStep& step : steps_) {
    if (step.out >= natts) break;  // partial-deform early out
    ops += 3;  // the entire per-attribute cost of the bee routine
    switch (step.op) {
      case DeformOp::kFixed1: {
        uint8_t v;
        std::memcpy(&v, tp + step.arg, 1);
        values[step.out] = static_cast<Datum>(v);
        break;
      }
      case DeformOp::kFixed4: {
        int32_t v;
        std::memcpy(&v, tp + step.arg, 4);
        values[step.out] = DatumFromInt32(v);
        break;
      }
      case DeformOp::kFixed8: {
        Datum v;
        std::memcpy(&v, tp + step.arg, 8);
        values[step.out] = v;
        break;
      }
      case DeformOp::kFixedChar:
        values[step.out] = DatumFromPointer(tp + step.arg);
        break;
      case DeformOp::kFixedVarlena:
        values[step.out] = DatumFromPointer(tp + step.arg);
        off = step.arg + VarlenaSize(tp + step.arg);
        break;
      case DeformOp::kDyn1: {
        uint8_t v;
        std::memcpy(&v, tp + off, 1);
        values[step.out] = static_cast<Datum>(v);
        off += 1;
        break;
      }
      case DeformOp::kDyn4: {
        off = AlignUp32(off, 4);
        int32_t v;
        std::memcpy(&v, tp + off, 4);
        values[step.out] = DatumFromInt32(v);
        off += 4;
        break;
      }
      case DeformOp::kDyn8: {
        off = AlignUp32(off, 8);
        Datum v;
        std::memcpy(&v, tp + off, 8);
        values[step.out] = v;
        off += 8;
        break;
      }
      case DeformOp::kDynChar:
        values[step.out] = DatumFromPointer(tp + off);
        off += step.len;
        break;
      case DeformOp::kDynVarlena:
        off = AlignUp32(off, 4);
        values[step.out] = DatumFromPointer(tp + off);
        off += VarlenaSize(tp + off);
        break;
      case DeformOp::kSection:
        values[step.out] = section->datums[step.arg];
        break;
    }
  }
  workops::Bump(ops);
}

void DeformProgram::ExecuteBatch(const char* const* tuples, int ntuples,
                                 int natts, Datum* const* cols,
                                 bool* const* nulls,
                                 const TupleBeeManager* bees) const {
  uint64_t ops = 2;  // one bee dispatch for the whole page
  for (int r = 0; r < ntuples; ++r) {
    const char* tuple = tuples[r];
    TupleHeader h = ReadHeader(tuple);
    const char* tp = tuple + h.hoff;
    const DataSection* section = nullptr;
    if (bees != nullptr && (h.flags & kTupleHasBeeId) != 0) {
      section = bees->section(h.bee_id);
    }
    uint32_t off = 0;
    if (MICROSPEC_UNLIKELY((h.flags & kTupleHasNulls) != 0)) {
      // Null-carrying tuple: the null-aware step list, column-major writes.
      for (const DeformStep& step : null_steps_) {
        if (step.out >= natts) break;
        ops += 3;  // amortized loop body + bitmap branch
        if (step.op == DeformOp::kSection) {
          cols[step.out][r] = section->datums[step.arg];
          nulls[step.out][r] = false;
          continue;
        }
        if (step.maybe_null && TupleAttIsNull(tuple, step.stored)) {
          cols[step.out][r] = 0;
          nulls[step.out][r] = true;
          continue;
        }
        nulls[step.out][r] = false;
        switch (step.op) {
          case DeformOp::kDyn1: {
            uint8_t v;
            std::memcpy(&v, tp + off, 1);
            cols[step.out][r] = static_cast<Datum>(v);
            off += 1;
            break;
          }
          case DeformOp::kDyn4: {
            off = AlignUp32(off, 4);
            int32_t v;
            std::memcpy(&v, tp + off, 4);
            cols[step.out][r] = DatumFromInt32(v);
            off += 4;
            break;
          }
          case DeformOp::kDyn8: {
            off = AlignUp32(off, 8);
            Datum v;
            std::memcpy(&v, tp + off, 8);
            cols[step.out][r] = v;
            off += 8;
            break;
          }
          case DeformOp::kDynChar:
            cols[step.out][r] = DatumFromPointer(tp + off);
            off += step.len;
            break;
          case DeformOp::kDynVarlena:
            off = AlignUp32(off, 4);
            cols[step.out][r] = DatumFromPointer(tp + off);
            off += VarlenaSize(tp + off);
            break;
          default:
            MICROSPEC_CHECK(false);  // null variant holds only dynamic ops
        }
      }
      continue;
    }
    // No-nulls fast path: the Listing 2 body, one iteration of the page
    // loop. The per-attribute cost drops to 2 — the dispatch share of the
    // scalar bee call is paid once per page instead of once per tuple.
    for (const DeformStep& step : steps_) {
      if (step.out >= natts) break;
      ops += 2;
      nulls[step.out][r] = false;
      switch (step.op) {
        case DeformOp::kFixed1: {
          uint8_t v;
          std::memcpy(&v, tp + step.arg, 1);
          cols[step.out][r] = static_cast<Datum>(v);
          break;
        }
        case DeformOp::kFixed4: {
          int32_t v;
          std::memcpy(&v, tp + step.arg, 4);
          cols[step.out][r] = DatumFromInt32(v);
          break;
        }
        case DeformOp::kFixed8: {
          Datum v;
          std::memcpy(&v, tp + step.arg, 8);
          cols[step.out][r] = v;
          break;
        }
        case DeformOp::kFixedChar:
          cols[step.out][r] = DatumFromPointer(tp + step.arg);
          break;
        case DeformOp::kFixedVarlena:
          cols[step.out][r] = DatumFromPointer(tp + step.arg);
          off = step.arg + VarlenaSize(tp + step.arg);
          break;
        case DeformOp::kDyn1: {
          uint8_t v;
          std::memcpy(&v, tp + off, 1);
          cols[step.out][r] = static_cast<Datum>(v);
          off += 1;
          break;
        }
        case DeformOp::kDyn4: {
          off = AlignUp32(off, 4);
          int32_t v;
          std::memcpy(&v, tp + off, 4);
          cols[step.out][r] = DatumFromInt32(v);
          off += 4;
          break;
        }
        case DeformOp::kDyn8: {
          off = AlignUp32(off, 8);
          Datum v;
          std::memcpy(&v, tp + off, 8);
          cols[step.out][r] = v;
          off += 8;
          break;
        }
        case DeformOp::kDynChar:
          cols[step.out][r] = DatumFromPointer(tp + off);
          off += step.len;
          break;
        case DeformOp::kDynVarlena:
          off = AlignUp32(off, 4);
          cols[step.out][r] = DatumFromPointer(tp + off);
          off += VarlenaSize(tp + off);
          break;
        case DeformOp::kSection:
          cols[step.out][r] = section->datums[step.arg];
          break;
      }
    }
  }
  workops::Bump(ops);
}

void DeformProgram::ExecuteWithNulls(const char* tuple, int natts,
                                     Datum* values, bool* isnull,
                                     const TupleBeeManager* bees) const {
  TupleHeader h = ReadHeader(tuple);
  const char* tp = tuple + h.hoff;
  const DataSection* section = nullptr;
  if (bees != nullptr && (h.flags & kTupleHasBeeId) != 0) {
    section = bees->section(h.bee_id);
  }
  uint32_t off = 0;
  uint64_t ops = 0;
  for (const DeformStep& step : null_steps_) {
    if (step.out >= natts) break;
    ops += 4;  // one extra bitmap branch vs the no-nulls fast path
    if (step.op == DeformOp::kSection) {
      values[step.out] = section->datums[step.arg];
      if (isnull != nullptr) isnull[step.out] = false;
      continue;
    }
    if (step.maybe_null && TupleAttIsNull(tuple, step.stored)) {
      values[step.out] = 0;
      isnull[step.out] = true;
      continue;
    }
    if (isnull != nullptr) isnull[step.out] = false;
    switch (step.op) {
      case DeformOp::kDyn1: {
        uint8_t v;
        std::memcpy(&v, tp + off, 1);
        values[step.out] = static_cast<Datum>(v);
        off += 1;
        break;
      }
      case DeformOp::kDyn4: {
        off = AlignUp32(off, 4);
        int32_t v;
        std::memcpy(&v, tp + off, 4);
        values[step.out] = DatumFromInt32(v);
        off += 4;
        break;
      }
      case DeformOp::kDyn8: {
        off = AlignUp32(off, 8);
        Datum v;
        std::memcpy(&v, tp + off, 8);
        values[step.out] = v;
        off += 8;
        break;
      }
      case DeformOp::kDynChar:
        values[step.out] = DatumFromPointer(tp + off);
        off += step.len;
        break;
      case DeformOp::kDynVarlena:
        off = AlignUp32(off, 4);
        values[step.out] = DatumFromPointer(tp + off);
        off += VarlenaSize(tp + off);
        break;
      default:
        MICROSPEC_CHECK(false);  // null variant holds only dynamic ops
    }
  }
  workops::Bump(ops);
}

std::string DeformProgram::ToString() const {
  std::string out;
  static const char* kNames[] = {"fixed1",  "fixed4",  "fixed8",
                                 "fixchar", "fixvarl", "dyn1",
                                 "dyn4",    "dyn8",    "dynchar",
                                 "dynvarl", "section"};
  for (const DeformStep& s : steps_) {
    out += "values[";
    out += std::to_string(s.out);
    out += "] <- ";
    out += kNames[static_cast<int>(s.op)];
    if (s.op == DeformOp::kSection) {
      out += " slot=" + std::to_string(s.arg);
    } else if (static_cast<int>(s.op) <= 4) {
      out += " off=" + std::to_string(s.arg);
    } else {
      out += " align=" + std::to_string(s.align);
    }
    if (s.len != 0) out += " len=" + std::to_string(s.len);
    out += "\n";
  }
  return out;
}

/// --- FormProgram ------------------------------------------------------------

FormProgram FormProgram::Compile(const Schema& logical, const Schema& stored,
                                 const std::vector<int>& spec_cols) {
  FormProgram p;
  p.logical_natts_ = logical.natts();
  p.stored_natts_ = stored.natts();
  p.header_size_ = TupleHeaderSize(stored.natts(), /*has_nulls=*/false);
  p.header_size_nulls_ = TupleHeaderSize(stored.natts(), /*has_nulls=*/true);

  std::vector<bool> is_spec(static_cast<size_t>(logical.natts()), false);
  for (int c : spec_cols) is_spec[static_cast<size_t>(c)] = true;

  int stored_idx = 0;
  for (int i = 0; i < logical.natts(); ++i) {
    if (is_spec[static_cast<size_t>(i)]) continue;  // lives in the section
    const Column& c = logical.column(i);
    FormStep step{};
    step.in = static_cast<uint16_t>(i);
    step.stored = static_cast<uint16_t>(stored_idx++);
    step.maybe_null = !c.not_null();
    step.align = static_cast<uint8_t>(c.attalign());
    if (c.byval()) {
      switch (c.attlen()) {
        case 1:
          step.op = FormOp::kPut1;
          break;
        case 4:
          step.op = FormOp::kPut4;
          break;
        case 8:
          step.op = FormOp::kPut8;
          break;
        default:
          MICROSPEC_CHECK(false);
      }
    } else if (c.attlen() == kVariableLength) {
      step.op = FormOp::kPutVarlena;
    } else {
      step.op = FormOp::kPutChar;
      step.len = static_cast<uint32_t>(c.attlen());
    }
    p.steps_.push_back(step);
  }
  return p;
}

void FormProgram::Execute(const Datum* values, uint8_t bee_id,
                          bool has_bee_id, std::string* out) const {
  // Pass 1: size. All offsets/alignments are known except varlena lengths.
  uint32_t off = 0;
  uint64_t ops = 0;
  for (const FormStep& step : steps_) {
    ops += 2;  // the bee routine's per-attribute cost
    off = AlignUp32(off, step.align);
    switch (step.op) {
      case FormOp::kPut1:
        off += 1;
        break;
      case FormOp::kPut4:
        off += 4;
        break;
      case FormOp::kPut8:
        off += 8;
        break;
      case FormOp::kPutChar:
        off += step.len;
        break;
      case FormOp::kPutVarlena:
        off += VarlenaSize(DatumToPointer(values[step.in]));
        break;
    }
  }
  uint32_t total = header_size_ + off;
  out->resize(total);
  char* buf = out->data();

  TupleHeader h;
  h.natts = static_cast<uint16_t>(stored_natts_);
  h.flags = has_bee_id ? kTupleHasBeeId : 0;
  h.bee_id = bee_id;
  h.hoff = static_cast<uint16_t>(header_size_);
  std::memcpy(buf, &h, sizeof(h));
  std::memset(buf + sizeof(h), 0, header_size_ - sizeof(h));

  // Pass 2: fill.
  char* tp = buf + header_size_;
  off = 0;
  for (const FormStep& step : steps_) {
    ops += 2;
    uint32_t aligned = AlignUp32(off, step.align);
    if (aligned != off) {
      std::memset(tp + off, 0, aligned - off);
      off = aligned;
    }
    switch (step.op) {
      case FormOp::kPut1: {
        uint8_t v = static_cast<uint8_t>(values[step.in]);
        std::memcpy(tp + off, &v, 1);
        off += 1;
        break;
      }
      case FormOp::kPut4: {
        int32_t v = DatumToInt32(values[step.in]);
        std::memcpy(tp + off, &v, 4);
        off += 4;
        break;
      }
      case FormOp::kPut8:
        std::memcpy(tp + off, &values[step.in], 8);
        off += 8;
        break;
      case FormOp::kPutChar:
        std::memcpy(tp + off, DatumToPointer(values[step.in]), step.len);
        off += step.len;
        break;
      case FormOp::kPutVarlena: {
        const char* src = DatumToPointer(values[step.in]);
        uint32_t sz = VarlenaSize(src);
        std::memcpy(tp + off, src, sz);
        off += sz;
        break;
      }
    }
  }
  workops::Bump(ops);
}

void FormProgram::ExecuteNullable(const Datum* values, const bool* isnull,
                                  uint8_t bee_id, bool has_bee_id,
                                  std::string* out) const {
  // Pass 1: size, skipping NULL attributes.
  uint32_t off = 0;
  uint64_t ops = 0;
  for (const FormStep& step : steps_) {
    ops += 3;
    if (step.maybe_null && isnull[step.in]) continue;
    off = AlignUp32(off, step.align);
    switch (step.op) {
      case FormOp::kPut1:
        off += 1;
        break;
      case FormOp::kPut4:
        off += 4;
        break;
      case FormOp::kPut8:
        off += 8;
        break;
      case FormOp::kPutChar:
        off += step.len;
        break;
      case FormOp::kPutVarlena:
        off += VarlenaSize(DatumToPointer(values[step.in]));
        break;
    }
  }
  uint32_t total = header_size_nulls_ + off;
  out->resize(total);
  char* buf = out->data();

  TupleHeader h;
  h.natts = static_cast<uint16_t>(stored_natts_);
  h.flags = static_cast<uint8_t>(kTupleHasNulls |
                                 (has_bee_id ? kTupleHasBeeId : 0));
  h.bee_id = bee_id;
  h.hoff = static_cast<uint16_t>(header_size_nulls_);
  std::memcpy(buf, &h, sizeof(h));
  std::memset(buf + sizeof(h), 0, header_size_nulls_ - sizeof(h));
  uint8_t* bitmap = reinterpret_cast<uint8_t*>(buf) + sizeof(TupleHeader);

  // Pass 2: fill, setting bitmap bits for NULL attributes.
  char* tp = buf + header_size_nulls_;
  off = 0;
  for (const FormStep& step : steps_) {
    ops += 3;
    if (step.maybe_null && isnull[step.in]) {
      bitmap[step.stored >> 3] = static_cast<uint8_t>(
          bitmap[step.stored >> 3] | (1u << (step.stored & 7)));
      continue;
    }
    uint32_t aligned = AlignUp32(off, step.align);
    if (aligned != off) {
      std::memset(tp + off, 0, aligned - off);
      off = aligned;
    }
    switch (step.op) {
      case FormOp::kPut1: {
        uint8_t v = static_cast<uint8_t>(values[step.in]);
        std::memcpy(tp + off, &v, 1);
        off += 1;
        break;
      }
      case FormOp::kPut4: {
        int32_t v = DatumToInt32(values[step.in]);
        std::memcpy(tp + off, &v, 4);
        off += 4;
        break;
      }
      case FormOp::kPut8:
        std::memcpy(tp + off, &values[step.in], 8);
        off += 8;
        break;
      case FormOp::kPutChar:
        std::memcpy(tp + off, DatumToPointer(values[step.in]), step.len);
        off += step.len;
        break;
      case FormOp::kPutVarlena: {
        const char* src = DatumToPointer(values[step.in]);
        uint32_t sz = VarlenaSize(src);
        std::memcpy(tp + off, src, sz);
        off += sz;
        break;
      }
    }
  }
  workops::Bump(ops);
}

}  // namespace microspec::bee
