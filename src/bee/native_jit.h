#ifndef MICROSPEC_BEE_NATIVE_JIT_H_
#define MICROSPEC_BEE_NATIVE_JIT_H_

#include <mutex>
#include <string>
#include <vector>

#include "bee/query_bee.h"
#include "bee/tuple_bee.h"
#include "catalog/schema.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace microspec::bee {

/// Signature of a natively compiled GCL routine. `sections` is the per-
/// beeID array of datum arrays (the data-section holes of Listing 2);
/// nullptr for relations without tuple bees.
using NativeGclFn = void (*)(const char* tuple, int natts,
                             unsigned long* values, char* isnull,
                             const unsigned long* const* sections);

/// Signature of the natively compiled GCL-B routine: deforms `ntuples`
/// tuples — all live tuples of one pinned page — in a single call, writing
/// column-major (cols[a][r] / nulls[a][r] receive attribute `a` of
/// tuples[r]). Generated alongside the scalar routine in the same source
/// under the symbol `<symbol>_b`.
using NativeGclBatchFn = void (*)(const char* const* tuples, int ntuples,
                                  int natts, unsigned long* const* cols,
                                  char* const* nulls,
                                  const unsigned long* const* sections);

/// Both entry points of one compiled GCL shared object.
struct NativeGclPair {
  NativeGclFn scalar = nullptr;
  NativeGclBatchFn batch = nullptr;
};

/// Signature of the natively compiled log-bee applier (`<symbol>_la`):
/// applies one physiological WAL mutation to a pinned page after checking
/// the tuple image against the relation's burned-in layout constants.
/// Returns 0 on success, a small positive diagnostic code on any check or
/// page-state failure (the caller maps codes back to Status::Corruption).
using NativeLogApplyFn = int (*)(char* page, int op, unsigned int slot,
                                 const char* img, unsigned int len);

/// All three entry points of one compiled relation-bee shared object:
/// scalar GCL, GCL-B page batch, and the log applier.
struct NativeGclTriple {
  NativeGclFn scalar = nullptr;
  NativeGclBatchFn batch = nullptr;
  NativeLogApplyFn log_apply = nullptr;
};

/// --- The native bee backend -------------------------------------------------
/// This backend emits C source equivalent to the paper's Listing 2, invokes
/// the system C compiler to build a shared object, and dlopens the resulting
/// bee routine. The paper extracts function bodies from the ELF object into
/// its bee cache; we keep the .so itself as the cached executable form.
///
/// The paper invokes gcc inline at CREATE TABLE ("bee creation overhead is
/// not critical ... we can invoke gcc", Section III-B); under the forge
/// (bee/forge.h) compilation instead happens on background workers, so every
/// entry point here is safe to call from multiple threads concurrently.
class NativeJit {
 public:
  NativeJit() = default;
  ~NativeJit();
  MICROSPEC_DISALLOW_COPY_AND_MOVE(NativeJit);

  /// True if a C compiler is available on this host. Probed exactly once
  /// (thread-safe: forge workers and DDL threads may race the first call).
  static bool CompilerAvailable();

  /// Generates the Listing-2-style C source of the GCL routine for
  /// `logical`/`stored` with tuple-bee holes for `spec_cols`.
  /// Exposed separately so tests and the bee_inspector example can show the
  /// generated specialization.
  static std::string GenerateGclSource(const Schema& logical,
                                       const Schema& stored,
                                       const std::vector<int>& spec_cols,
                                       const std::string& symbol);

  /// Generates the C form of an EVP query bee: the row-form routine and its
  /// `<symbol>_b` clause-major batch sibling, both dispatching every clause
  /// through one shared `<symbol>_clause` comparison core. Query bees never
  /// invoke a compiler at query-preparation time (Section III-B) — this
  /// source is a specification artifact for LintNativeEvpSource, stating the
  /// shape the ahead-of-time enumerated kernels must have; it is linted at
  /// install time but never compiled.
  static std::string GenerateEvpSource(const EvpBee& bee,
                                       const std::string& symbol);

  /// Compiles and loads the GCL routine. `work_dir` receives the .c and .so
  /// files (the on-disk bee cache). Returns the entry point.
  Result<NativeGclFn> CompileGcl(const Schema& logical, const Schema& stored,
                                 const std::vector<int>& spec_cols,
                                 const std::string& work_dir,
                                 const std::string& symbol);

  /// Lower-level entry point used by the forge, which generates (and
  /// verifies) the source itself before scheduling the compile: writes
  /// `source` to `work_dir`, compiles it to a shared object, and resolves
  /// `symbol`. On compiler failure the Status message carries the compiler's
  /// captured stderr.
  Result<NativeGclFn> CompileSource(const std::string& source,
                                    const std::string& work_dir,
                                    const std::string& symbol);

  /// Like CompileSource but resolves both the scalar `symbol` and the
  /// page-batch `symbol`_b entry points (GenerateGclSource emits the pair
  /// into one translation unit; they ship, verify and publish together).
  Result<NativeGclPair> CompileSourcePair(const std::string& source,
                                          const std::string& work_dir,
                                          const std::string& symbol);

  /// Generates the C form of the relation's native log-bee applier
  /// (`symbol`_la): one routine with the stored layout's natts/flags/hoff
  /// and image-length bounds burned in as literals, plus the slotted-page
  /// mutation bodies working through the exported page layout constants.
  static std::string GenerateLogApplierSource(const Schema& stored,
                                              bool has_tuple_bees,
                                              const std::string& symbol);

  /// Like CompileSourcePair but additionally resolves `symbol`_la; used by
  /// the forge once the source carries the GCL pair plus the log applier.
  Result<NativeGclTriple> CompileSourceTriple(const std::string& source,
                                              const std::string& work_dir,
                                              const std::string& symbol);

 private:
  std::mutex mutex_;            // guards handles_ (forge workers race here)
  std::vector<void*> handles_;  // dlopen handles, closed on destruction
};

}  // namespace microspec::bee

#endif  // MICROSPEC_BEE_NATIVE_JIT_H_
