#include "bee/tuple_bee.h"

#include <cstring>

#include "common/counters.h"
#include "common/hash.h"

namespace microspec::bee {

TupleBeeManager::~TupleBeeManager() {
  for (DataSection* s : sections_) delete s;
}

void TupleBeeManager::SerializeKey(const Datum* logical_values,
                                   std::string* out) const {
  out->clear();
  for (int col : spec_cols_) {
    const Column& c = schema_->column(col);
    if (c.byval()) {
      Datum d = logical_values[col];
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
    } else if (c.type() == TypeId::kVarchar) {
      const char* p = DatumToPointer(logical_values[col]);
      out->append(p, VarlenaSize(p));
    } else {  // char(n)
      out->append(DatumToPointer(logical_values[col]),
                  static_cast<size_t>(c.attlen()));
    }
  }
}

void TupleBeeManager::BuildDatums(DataSection* s) const {
  s->datums.clear();
  const char* base = s->blob.data();
  size_t off = 0;
  for (int col : spec_cols_) {
    const Column& c = schema_->column(col);
    if (c.byval()) {
      Datum d;
      std::memcpy(&d, base + off, sizeof(d));
      s->datums.push_back(d);
      off += sizeof(Datum);
    } else if (c.type() == TypeId::kVarchar) {
      s->datums.push_back(DatumFromPointer(base + off));
      off += VarlenaSize(base + off);
    } else {
      s->datums.push_back(DatumFromPointer(base + off));
      off += static_cast<size_t>(c.attlen());
    }
  }
}

/// Hashes the specialized values directly (no serialization) — the hit path
/// must stay cheap because it runs once per inserted tuple.
uint64_t TupleBeeManager::HashValues(const Datum* logical_values) const {
  uint64_t h = 0xBEEULL;
  for (int col : spec_cols_) {
    const Column& c = schema_->column(col);
    if (c.byval()) {
      h = HashCombine(h, logical_values[col]);
    } else if (c.type() == TypeId::kVarchar) {
      const char* p = DatumToPointer(logical_values[col]);
      h = HashCombine(h, Hash64(p, VarlenaSize(p)));
    } else {
      h = HashCombine(h, Hash64(DatumToPointer(logical_values[col]),
                                static_cast<size_t>(c.attlen())));
    }
  }
  return h;
}

/// Field-by-field memcmp of the candidate values against a section's blob.
bool TupleBeeManager::MatchesSection(const DataSection& s,
                                     const Datum* logical_values) const {
  const char* base = s.blob.data();
  size_t off = 0;
  for (int col : spec_cols_) {
    const Column& c = schema_->column(col);
    if (c.byval()) {
      Datum d;
      std::memcpy(&d, base + off, sizeof(d));
      if (d != logical_values[col]) return false;
      off += sizeof(Datum);
    } else if (c.type() == TypeId::kVarchar) {
      const char* p = DatumToPointer(logical_values[col]);
      uint32_t len = VarlenaSize(p);
      if (off + len > s.blob.size() || VarlenaSize(base + off) != len ||
          std::memcmp(base + off, p, len) != 0) {
        return false;
      }
      off += len;
    } else {
      size_t len = static_cast<size_t>(c.attlen());
      if (std::memcmp(base + off, DatumToPointer(logical_values[col]), len) !=
          0) {
        return false;
      }
      off += len;
    }
  }
  return true;
}

Result<uint8_t> TupleBeeManager::Intern(const Datum* logical_values) {
  // Dedup against existing sections: a hash index narrows the candidates,
  // memcmp confirms — the check the paper measures as efficient in the
  // bulk-loading experiment (Section VI-B).
  uint64_t h = HashValues(logical_values);
  workops::Bump(6);
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    for (uint8_t id : it->second) {
      workops::Bump(2);
      if (MatchesSection(*sections_[id], logical_values)) return id;
    }
  }
  SerializeKey(logical_values, &scratch_key_);
  if (num_sections_ >= kMaxTupleBees) {
    return Status::ResourceExhausted(
        "tuple bees: more than 256 distinct specialized-value combinations; "
        "the low-cardinality annotation does not hold for this data");
  }
  auto* s = new DataSection();
  s->blob = scratch_key_;
  BuildDatums(s);
  sections_[num_sections_] = s;
  datum_table_[num_sections_] = s->datums.data();
  by_hash_[h].push_back(static_cast<uint8_t>(num_sections_));
  return static_cast<uint8_t>(num_sections_++);
}

size_t TupleBeeManager::section_bytes() const {
  size_t total = 0;
  for (int i = 0; i < num_sections_; ++i) total += sections_[i]->blob.size();
  return total;
}

Status TupleBeeManager::RestoreSection(const std::string& blob) {
  if (num_sections_ >= kMaxTupleBees) {
    return Status::Corruption("bee cache: too many sections");
  }
  auto* s = new DataSection();
  s->blob = blob;
  BuildDatums(s);
  sections_[num_sections_] = s;
  datum_table_[num_sections_] = s->datums.data();
  // Index under the same value hash Intern uses: reconstruct a sparse
  // logical row from the section's datums.
  std::vector<Datum> logical(static_cast<size_t>(schema_->natts()), 0);
  for (size_t i = 0; i < spec_cols_.size(); ++i) {
    logical[static_cast<size_t>(spec_cols_[i])] = s->datums[i];
  }
  by_hash_[HashValues(logical.data())].push_back(
      static_cast<uint8_t>(num_sections_));
  ++num_sections_;
  return Status::OK();
}

}  // namespace microspec::bee
