#include "bee/log_bee.h"

#include <cstring>

#include "common/align.h"
#include "storage/tuple.h"

namespace microspec::bee {

namespace {

/// Largest tuple image one page slot can hold.
constexpr uint32_t kMaxSlotImage = kPageSize - kPageHeaderSize - kPageSlotSize;

Status PageApply(char* page, LogApplyOp op, uint16_t slot, const char* img,
                 uint32_t len) {
  SlottedPage p(page);
  switch (op) {
    case LogApplyOp::kInsert: {
      // Redo replays inserts in their original order, so the target slot is
      // always the next fresh slot; anything else means the page diverged.
      if (slot != p.slot_count()) {
        return Status::Corruption("log apply: insert slot " +
                                  std::to_string(slot) + " != slot_count " +
                                  std::to_string(p.slot_count()));
      }
      int got = p.InsertTuple(img, len);
      if (got != static_cast<int>(slot)) {
        return Status::Corruption("log apply: insert did not fit");
      }
      return Status::OK();
    }
    case LogApplyOp::kDelete: {
      if (slot >= p.slot_count()) {
        return Status::Corruption("log apply: delete slot out of range");
      }
      uint32_t cur_len = 0;
      if (p.GetTuple(slot, &cur_len) == nullptr) {
        return Status::Corruption("log apply: delete of dead slot");
      }
      p.DeleteTuple(slot);
      return Status::OK();
    }
    case LogApplyOp::kRestore: {
      if (!p.RestoreTuple(slot, img, len)) {
        return Status::Corruption("log apply: restore failed at slot " +
                                  std::to_string(slot));
      }
      return Status::OK();
    }
    case LogApplyOp::kUpdateInPlace: {
      if (slot >= p.slot_count()) {
        return Status::Corruption("log apply: update slot out of range");
      }
      if (!p.UpdateTupleInPlace(slot, img, len)) {
        return Status::Corruption("log apply: in-place update does not fit");
      }
      return Status::OK();
    }
  }
  return Status::Internal("log apply: bad op");
}

}  // namespace

LogLenBounds ComputeLogLenBounds(const Schema& stored) {
  LogLenBounds b;
  bool fixed = true;
  uint32_t data = 0;
  for (int i = 0; i < stored.natts(); ++i) {
    const Column& c = stored.column(i);
    if (c.attlen() < 0) {
      fixed = false;
      break;
    }
    data = AlignUp32(data, static_cast<uint32_t>(c.attalign())) +
           static_cast<uint32_t>(c.attlen());
  }
  uint32_t hoff = TupleHeaderSize(stored.natts(), /*has_nulls=*/false);
  uint32_t hoff_nulls = TupleHeaderSize(stored.natts(), /*has_nulls=*/true);
  if (fixed && !stored.has_nullable()) {
    // The strongest form of the check: for a fixed all-NOT-NULL layout the
    // image length is an exact compile-time constant.
    b.min_len = hoff + data;
    b.max_len = b.min_len;
  } else if (fixed) {
    // Nullable fixed layout: null attributes are absent from the data area,
    // so anywhere between "bitmap header only" and "all present".
    b.min_len = hoff_nulls < hoff + data ? hoff_nulls : hoff + data;
    uint32_t hi = hoff_nulls + data;
    b.max_len = hi > hoff + data ? hi : hoff + data;
  } else {
    b.min_len = hoff;
    b.max_len = kMaxSlotImage;
  }
  return b;
}

LogApplierProgram LogApplierProgram::Compile(const Schema& stored,
                                             bool has_tuple_bees) {
  LogApplierProgram p;
  p.steps_.push_back({LogStepOp::kCheckNatts,
                      static_cast<uint32_t>(stored.natts()), 0});
  p.steps_.push_back({LogStepOp::kCheckBeeFlag, has_tuple_bees ? 1u : 0u, 0});
  p.steps_.push_back(
      {LogStepOp::kCheckHoff,
       TupleHeaderSize(stored.natts(), /*has_nulls=*/false),
       TupleHeaderSize(stored.natts(), /*has_nulls=*/true)});
  LogLenBounds b = ComputeLogLenBounds(stored);
  p.steps_.push_back({LogStepOp::kCheckLen, b.min_len, b.max_len});
  p.steps_.push_back({LogStepOp::kApply, 0, 0});
  return p;
}

Status LogApplierProgram::Apply(char* page, LogApplyOp op, uint16_t slot,
                                const char* img, uint32_t len) const {
  // kDelete carries no new image onto the page; only kApply runs for it.
  const bool check_image = op != LogApplyOp::kDelete;
  for (const LogStep& s : steps_) {
    switch (s.op) {
      case LogStepOp::kCheckNatts: {
        if (!check_image) break;
        if (len < sizeof(TupleHeader)) {
          return Status::Corruption("log apply: image shorter than header");
        }
        uint16_t natts;
        std::memcpy(&natts, img, sizeof(natts));
        if (natts != s.arg) {
          return Status::Corruption("log apply: image natts " +
                                    std::to_string(natts) + " != " +
                                    std::to_string(s.arg));
        }
        break;
      }
      case LogStepOp::kCheckBeeFlag: {
        if (!check_image) break;
        uint8_t flags = static_cast<uint8_t>(img[2]);
        bool has = (flags & kTupleHasBeeId) != 0;
        if (has != (s.arg != 0)) {
          return Status::Corruption("log apply: beeID flag mismatch");
        }
        break;
      }
      case LogStepOp::kCheckHoff: {
        if (!check_image) break;
        uint8_t flags = static_cast<uint8_t>(img[2]);
        uint16_t hoff;
        std::memcpy(&hoff, img + 4, sizeof(hoff));
        uint32_t want = (flags & kTupleHasNulls) != 0 ? s.arg2 : s.arg;
        if (hoff != want) {
          return Status::Corruption("log apply: image hoff " +
                                    std::to_string(hoff) + " != " +
                                    std::to_string(want));
        }
        break;
      }
      case LogStepOp::kCheckLen: {
        if (!check_image) break;
        if (len < s.arg || len > s.arg2) {
          return Status::Corruption("log apply: image length " +
                                    std::to_string(len) + " outside [" +
                                    std::to_string(s.arg) + "," +
                                    std::to_string(s.arg2) + "]");
        }
        break;
      }
      case LogStepOp::kApply:
        return PageApply(page, op, slot, img, len);
    }
  }
  return Status::Internal("log applier: no apply step");
}

Status GenericLogApply(char* page, LogApplyOp op, uint16_t slot,
                       const char* img, uint32_t len) {
  if (op != LogApplyOp::kDelete) {
    if (len < sizeof(TupleHeader) || len > kMaxSlotImage) {
      return Status::Corruption("log apply: implausible image length " +
                                std::to_string(len));
    }
  }
  return PageApply(page, op, slot, img, len);
}

const char* LogApplyOpName(LogApplyOp op) {
  switch (op) {
    case LogApplyOp::kInsert:
      return "insert";
    case LogApplyOp::kDelete:
      return "delete";
    case LogApplyOp::kRestore:
      return "restore";
    case LogApplyOp::kUpdateInPlace:
      return "update-in-place";
  }
  return "?";
}

std::string LogApplierProgram::Disassemble() const {
  std::string out;
  for (const LogStep& s : steps_) {
    switch (s.op) {
      case LogStepOp::kCheckNatts:
        out += "check_natts " + std::to_string(s.arg) + "\n";
        break;
      case LogStepOp::kCheckBeeFlag:
        out += "check_bee_flag " + std::to_string(s.arg) + "\n";
        break;
      case LogStepOp::kCheckHoff:
        out += "check_hoff " + std::to_string(s.arg) + " " +
               std::to_string(s.arg2) + "\n";
        break;
      case LogStepOp::kCheckLen:
        out += "check_len " + std::to_string(s.arg) + " " +
               std::to_string(s.arg2) + "\n";
        break;
      case LogStepOp::kApply:
        out += "apply\n";
        break;
    }
  }
  return out;
}

}  // namespace microspec::bee
