#include "bee/query_bee.h"

#include <cstring>

#include "bee/native_jit.h"
#include "bee/verifier.h"
#include "common/counters.h"
#include "common/hash.h"

namespace microspec::bee {

namespace {

/// --- Pre-compiled EVP kernel variants ---------------------------------------
/// One template instantiation per (type class x operator): the ahead-of-time
/// enumerated object code the paper describes. Each kernel does exactly one
/// null check, one load, and one comparison — no tree walk, no type dispatch.

template <CmpOp Op>
inline bool ApplyCmp(int c) {
  switch (Op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

/// Comparison cores shared by the row-form kernels and their value-form
/// (EVP-B batch) siblings — one monomorphized comparison, two entry shapes.

template <CmpOp Op>
inline bool CmpIntVal(const EvpClause& c, Datum v) {
  int64_t x = DatumToInt64(v);
  int64_t k = DatumToInt64(c.constant);
  return ApplyCmp<Op>(x < k ? -1 : (x > k ? 1 : 0));
}

template <CmpOp Op>
inline bool CmpFloatVal(const EvpClause& c, Datum v) {
  double x = DatumToFloat64(v);
  double k = DatumToFloat64(c.constant);
  return ApplyCmp<Op>(x < k ? -1 : (x > k ? 1 : 0));
}

template <CmpOp Op>
inline bool CmpCharVal(const EvpClause& c, Datum v) {
  int cmp = std::memcmp(DatumToPointer(v), DatumToPointer(c.constant),
                        static_cast<size_t>(c.charlen));
  return ApplyCmp<Op>(cmp);
}

template <CmpOp Op>
inline bool CmpVarcharVal(const EvpClause& c, Datum v) {
  const char* a = DatumToPointer(v);
  const char* b = DatumToPointer(c.constant);
  uint32_t la = VarlenaPayloadSize(a);
  uint32_t lb = VarlenaPayloadSize(b);
  uint32_t m = la < lb ? la : lb;
  int cmp = std::memcmp(VarlenaPayload(a), VarlenaPayload(b), m);
  if (cmp == 0) cmp = la < lb ? -1 : (la > lb ? 1 : 0);
  return ApplyCmp<Op>(cmp);
}

template <CmpOp Op>
bool CmpIntKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return CmpIntVal<Op>(c, v[c.attno]);
}

template <CmpOp Op>
bool CmpFloatKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return CmpFloatVal<Op>(c, v[c.attno]);
}

template <CmpOp Op>
bool CmpCharKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return CmpCharVal<Op>(c, v[c.attno]);
}

template <CmpOp Op>
bool CmpVarcharKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return CmpVarcharVal<Op>(c, v[c.attno]);
}

template <CmpOp Op>
bool CmpIntColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && CmpIntVal<Op>(c, v);
}

template <CmpOp Op>
bool CmpFloatColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && CmpFloatVal<Op>(c, v);
}

template <CmpOp Op>
bool CmpCharColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && CmpCharVal<Op>(c, v);
}

template <CmpOp Op>
bool CmpVarcharColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && CmpVarcharVal<Op>(c, v);
}

EvpKernelFn SelectCmpKernel(KernelClass cls, CmpOp op) {
  static constexpr EvpKernelFn kInt[] = {
      CmpIntKernel<CmpOp::kEq>, CmpIntKernel<CmpOp::kNe>,
      CmpIntKernel<CmpOp::kLt>, CmpIntKernel<CmpOp::kLe>,
      CmpIntKernel<CmpOp::kGt>, CmpIntKernel<CmpOp::kGe>};
  static constexpr EvpKernelFn kFloat[] = {
      CmpFloatKernel<CmpOp::kEq>, CmpFloatKernel<CmpOp::kNe>,
      CmpFloatKernel<CmpOp::kLt>, CmpFloatKernel<CmpOp::kLe>,
      CmpFloatKernel<CmpOp::kGt>, CmpFloatKernel<CmpOp::kGe>};
  static constexpr EvpKernelFn kChar[] = {
      CmpCharKernel<CmpOp::kEq>, CmpCharKernel<CmpOp::kNe>,
      CmpCharKernel<CmpOp::kLt>, CmpCharKernel<CmpOp::kLe>,
      CmpCharKernel<CmpOp::kGt>, CmpCharKernel<CmpOp::kGe>};
  static constexpr EvpKernelFn kVarchar[] = {
      CmpVarcharKernel<CmpOp::kEq>, CmpVarcharKernel<CmpOp::kNe>,
      CmpVarcharKernel<CmpOp::kLt>, CmpVarcharKernel<CmpOp::kLe>,
      CmpVarcharKernel<CmpOp::kGt>, CmpVarcharKernel<CmpOp::kGe>};
  switch (cls) {
    case KernelClass::kInt:
      return kInt[static_cast<int>(op)];
    case KernelClass::kFloat:
      return kFloat[static_cast<int>(op)];
    case KernelClass::kChar:
      return kChar[static_cast<int>(op)];
    case KernelClass::kVarchar:
      return kVarchar[static_cast<int>(op)];
  }
  return nullptr;
}

EvpColKernelFn SelectCmpColKernel(KernelClass cls, CmpOp op) {
  static constexpr EvpColKernelFn kInt[] = {
      CmpIntColKernel<CmpOp::kEq>, CmpIntColKernel<CmpOp::kNe>,
      CmpIntColKernel<CmpOp::kLt>, CmpIntColKernel<CmpOp::kLe>,
      CmpIntColKernel<CmpOp::kGt>, CmpIntColKernel<CmpOp::kGe>};
  static constexpr EvpColKernelFn kFloat[] = {
      CmpFloatColKernel<CmpOp::kEq>, CmpFloatColKernel<CmpOp::kNe>,
      CmpFloatColKernel<CmpOp::kLt>, CmpFloatColKernel<CmpOp::kLe>,
      CmpFloatColKernel<CmpOp::kGt>, CmpFloatColKernel<CmpOp::kGe>};
  static constexpr EvpColKernelFn kChar[] = {
      CmpCharColKernel<CmpOp::kEq>, CmpCharColKernel<CmpOp::kNe>,
      CmpCharColKernel<CmpOp::kLt>, CmpCharColKernel<CmpOp::kLe>,
      CmpCharColKernel<CmpOp::kGt>, CmpCharColKernel<CmpOp::kGe>};
  static constexpr EvpColKernelFn kVarchar[] = {
      CmpVarcharColKernel<CmpOp::kEq>, CmpVarcharColKernel<CmpOp::kNe>,
      CmpVarcharColKernel<CmpOp::kLt>, CmpVarcharColKernel<CmpOp::kLe>,
      CmpVarcharColKernel<CmpOp::kGt>, CmpVarcharColKernel<CmpOp::kGe>};
  switch (cls) {
    case KernelClass::kInt:
      return kInt[static_cast<int>(op)];
    case KernelClass::kFloat:
      return kFloat[static_cast<int>(op)];
    case KernelClass::kChar:
      return kChar[static_cast<int>(op)];
    case KernelClass::kVarchar:
      return kVarchar[static_cast<int>(op)];
  }
  return nullptr;
}

template <LikeExpr::Mode Mode, bool Negated, bool FixedChar>
inline bool LikeVal(const EvpClause& c, Datum v) {
  std::string_view hay;
  if constexpr (FixedChar) {
    hay = std::string_view(DatumToPointer(v), static_cast<size_t>(c.charlen));
  } else {
    const char* p = DatumToPointer(v);
    hay = std::string_view(VarlenaPayload(p), VarlenaPayloadSize(p));
  }
  std::string_view needle(c.aux, c.aux_len);
  bool match = false;
  switch (Mode) {
    case LikeExpr::Mode::kExact:
      match = hay == needle;
      break;
    case LikeExpr::Mode::kPrefix:
      match = hay.substr(0, needle.size()) == needle;
      break;
    case LikeExpr::Mode::kSuffix:
      match = hay.size() >= needle.size() &&
              hay.substr(hay.size() - needle.size()) == needle;
      break;
    case LikeExpr::Mode::kContains:
      match = hay.find(needle) != std::string_view::npos;
      break;
  }
  return Negated ? !match : match;
}

template <LikeExpr::Mode Mode, bool Negated, bool FixedChar>
bool LikeKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return LikeVal<Mode, Negated, FixedChar>(c, v[c.attno]);
}

template <LikeExpr::Mode Mode, bool Negated, bool FixedChar>
bool LikeColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && LikeVal<Mode, Negated, FixedChar>(c, v);
}

template <bool FixedChar>
EvpKernelFn SelectLikeKernel(LikeExpr::Mode mode, bool negated) {
  switch (mode) {
    case LikeExpr::Mode::kExact:
      return negated ? LikeKernel<LikeExpr::Mode::kExact, true, FixedChar>
                     : LikeKernel<LikeExpr::Mode::kExact, false, FixedChar>;
    case LikeExpr::Mode::kPrefix:
      return negated ? LikeKernel<LikeExpr::Mode::kPrefix, true, FixedChar>
                     : LikeKernel<LikeExpr::Mode::kPrefix, false, FixedChar>;
    case LikeExpr::Mode::kSuffix:
      return negated ? LikeKernel<LikeExpr::Mode::kSuffix, true, FixedChar>
                     : LikeKernel<LikeExpr::Mode::kSuffix, false, FixedChar>;
    case LikeExpr::Mode::kContains:
      return negated
                 ? LikeKernel<LikeExpr::Mode::kContains, true, FixedChar>
                 : LikeKernel<LikeExpr::Mode::kContains, false, FixedChar>;
  }
  return nullptr;
}

template <bool FixedChar>
EvpColKernelFn SelectLikeColKernel(LikeExpr::Mode mode, bool negated) {
  switch (mode) {
    case LikeExpr::Mode::kExact:
      return negated ? LikeColKernel<LikeExpr::Mode::kExact, true, FixedChar>
                     : LikeColKernel<LikeExpr::Mode::kExact, false, FixedChar>;
    case LikeExpr::Mode::kPrefix:
      return negated
                 ? LikeColKernel<LikeExpr::Mode::kPrefix, true, FixedChar>
                 : LikeColKernel<LikeExpr::Mode::kPrefix, false, FixedChar>;
    case LikeExpr::Mode::kSuffix:
      return negated
                 ? LikeColKernel<LikeExpr::Mode::kSuffix, true, FixedChar>
                 : LikeColKernel<LikeExpr::Mode::kSuffix, false, FixedChar>;
    case LikeExpr::Mode::kContains:
      return negated
                 ? LikeColKernel<LikeExpr::Mode::kContains, true, FixedChar>
                 : LikeColKernel<LikeExpr::Mode::kContains, false, FixedChar>;
  }
  return nullptr;
}

inline bool InListIntVal(const EvpClause& c, Datum v) {
  int64_t x = DatumToInt64(v);
  const int64_t* items = reinterpret_cast<const int64_t*>(c.aux);
  for (uint32_t i = 0; i < c.aux_len; ++i) {
    workops::Bump(1);
    if (items[i] == x) return true;
  }
  return false;
}

inline bool InListVarcharVal(const EvpClause& c, Datum v) {
  const char* p = DatumToPointer(v);
  std::string_view hay(VarlenaPayload(p), VarlenaPayloadSize(p));
  // aux holds concatenated (u32 len, bytes) entries; aux_len is item count.
  const char* q = c.aux;
  for (uint32_t i = 0; i < c.aux_len; ++i) {
    workops::Bump(1);
    uint32_t len;
    std::memcpy(&len, q, 4);
    q += 4;
    if (hay.size() == len && std::memcmp(hay.data(), q, len) == 0) return true;
    q += len;
  }
  return false;
}

bool InListIntKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return InListIntVal(c, v[c.attno]);
}

bool InListVarcharKernel(const EvpClause& c, const Datum* v, const bool* n) {
  if (n != nullptr && n[c.attno]) return false;
  return InListVarcharVal(c, v[c.attno]);
}

bool InListIntColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && InListIntVal(c, v);
}

bool InListVarcharColKernel(const EvpClause& c, Datum v, bool isnull) {
  return !isnull && InListVarcharVal(c, v);
}

KernelClass ClassOf(TypeId t) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return KernelClass::kInt;
    case TypeId::kFloat64:
      return KernelClass::kFloat;
    case TypeId::kChar:
      return KernelClass::kChar;
    case TypeId::kVarchar:
      return KernelClass::kVarchar;
  }
  return KernelClass::kInt;
}

CmpOp FlipOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

/// Tries to lower one conjunct into a clause. Returns false when the shape
/// is not specializable.
bool LowerClause(const Expr& e, PlacementArena* arena,
                 std::vector<EvpBee::Clause>* clauses,
                 std::vector<EvpClauseInfo>* info,
                 std::vector<std::string>* owned) {
  if (e.kind() == ExprKind::kCmp) {
    const auto& cmp = static_cast<const CmpExpr&>(e);
    const Expr* var = cmp.lhs();
    const Expr* cst = cmp.rhs();
    CmpOp op = cmp.op();
    if (var->kind() == ExprKind::kConst && cst->kind() == ExprKind::kVar) {
      std::swap(var, cst);
      op = FlipOp(op);
    }
    if (var->kind() != ExprKind::kVar || cst->kind() != ExprKind::kConst) {
      return false;
    }
    const auto& v = static_cast<const VarExpr&>(*var);
    const auto& k = static_cast<const ConstExpr&>(*cst);
    if (v.side() != RowSide::kOuter || k.is_null_const()) return false;

    ColMeta vm = v.meta();
    KernelClass cls = ClassOf(vm.type);
    EvpClause ctx{};
    ctx.attno = v.attno();
    ctx.charlen = vm.attlen;
    ctx.nullable = true;

    ColMeta km = k.meta();
    if (cls == KernelClass::kInt || cls == KernelClass::kFloat) {
      if (ClassOf(km.type) != cls) return false;
      ctx.constant = k.value();
    } else if (cls == KernelClass::kVarchar) {
      if (km.type != TypeId::kVarchar) return false;
      const char* p = DatumToPointer(k.value());
      owned->emplace_back(p, VarlenaSize(p));
      ctx.constant = DatumFromPointer(owned->back().data());
    } else {  // kChar: blank-pad the constant to the column width
      std::string padded;
      if (km.type == TypeId::kVarchar) {
        const char* p = DatumToPointer(k.value());
        padded.assign(VarlenaPayload(p), VarlenaPayloadSize(p));
      } else if (km.type == TypeId::kChar) {
        padded.assign(DatumToPointer(k.value()),
                      static_cast<size_t>(km.attlen));
      } else {
        return false;
      }
      padded.resize(static_cast<size_t>(vm.attlen), ' ');
      owned->push_back(std::move(padded));
      ctx.constant = DatumFromPointer(owned->back().data());
    }
    clauses->push_back(EvpBee::Clause{SelectCmpKernel(cls, op),
                                      SelectCmpColKernel(cls, op),
                                      arena->New(ctx)});
    EvpClauseInfo ci{};
    ci.kind = EvpClauseKind::kCmp;
    ci.cls = cls;
    ci.op = op;
    info->push_back(ci);
    return true;
  }

  if (e.kind() == ExprKind::kLike) {
    const auto& like = static_cast<const LikeExpr&>(e);
    if (like.input()->kind() != ExprKind::kVar) return false;
    const auto& v = static_cast<const VarExpr&>(*like.input());
    if (v.side() != RowSide::kOuter) return false;
    ColMeta vm = v.meta();
    if (vm.type != TypeId::kVarchar && vm.type != TypeId::kChar) return false;
    owned->push_back(like.needle());
    EvpClause ctx{};
    ctx.attno = v.attno();
    ctx.charlen = vm.attlen;
    ctx.nullable = true;
    ctx.aux = owned->back().data();
    ctx.aux_len = static_cast<uint32_t>(owned->back().size());
    EvpKernelFn fn = vm.type == TypeId::kChar
                         ? SelectLikeKernel<true>(like.mode(), like.negated())
                         : SelectLikeKernel<false>(like.mode(), like.negated());
    EvpColKernelFn col_fn =
        vm.type == TypeId::kChar
            ? SelectLikeColKernel<true>(like.mode(), like.negated())
            : SelectLikeColKernel<false>(like.mode(), like.negated());
    clauses->push_back(EvpBee::Clause{fn, col_fn, arena->New(ctx)});
    EvpClauseInfo ci{};
    ci.kind = EvpClauseKind::kLike;
    ci.cls = vm.type == TypeId::kChar ? KernelClass::kChar
                                      : KernelClass::kVarchar;
    ci.like_mode = like.mode();
    ci.negated = like.negated();
    info->push_back(ci);
    return true;
  }

  if (e.kind() == ExprKind::kInList) {
    const auto& in = static_cast<const InListExpr&>(e);
    if (in.input()->kind() != ExprKind::kVar) return false;
    const auto& v = static_cast<const VarExpr&>(*in.input());
    if (v.side() != RowSide::kOuter) return false;
    KernelClass cls = ClassOf(v.meta().type);
    EvpClause ctx{};
    ctx.attno = v.attno();
    ctx.charlen = v.meta().attlen;
    ctx.nullable = true;
    EvpClauseInfo ci{};
    ci.kind = EvpClauseKind::kInList;
    ci.cls = cls;
    if (cls == KernelClass::kInt) {
      std::string storage(in.items().size() * sizeof(int64_t), '\0');
      auto* arr = reinterpret_cast<int64_t*>(storage.data());
      for (size_t i = 0; i < in.items().size(); ++i) {
        arr[i] = DatumToInt64(in.items()[i]);
      }
      owned->push_back(std::move(storage));
      ctx.aux = owned->back().data();
      ctx.aux_len = static_cast<uint32_t>(in.items().size());
      clauses->push_back(EvpBee::Clause{InListIntKernel, InListIntColKernel,
                                        arena->New(ctx)});
      info->push_back(ci);
      return true;
    }
    if (cls == KernelClass::kVarchar) {
      std::string storage;
      for (Datum d : in.items()) {
        const char* p = DatumToPointer(d);
        uint32_t len = VarlenaPayloadSize(p);
        storage.append(reinterpret_cast<const char*>(&len), 4);
        storage.append(VarlenaPayload(p), len);
      }
      owned->push_back(std::move(storage));
      ctx.aux = owned->back().data();
      ctx.aux_len = static_cast<uint32_t>(in.items().size());
      clauses->push_back(EvpBee::Clause{
          InListVarcharKernel, InListVarcharColKernel, arena->New(ctx)});
      info->push_back(ci);
      return true;
    }
    return false;
  }

  return false;
}

}  // namespace

KernelClass EvpKernelClassOf(TypeId t) { return ClassOf(t); }

EvpKernelFn EvpKernelFor(const EvpClauseInfo& info) {
  switch (info.kind) {
    case EvpClauseKind::kCmp:
      return SelectCmpKernel(info.cls, info.op);
    case EvpClauseKind::kLike:
      if (info.cls == KernelClass::kChar) {
        return SelectLikeKernel<true>(info.like_mode, info.negated);
      }
      if (info.cls == KernelClass::kVarchar) {
        return SelectLikeKernel<false>(info.like_mode, info.negated);
      }
      return nullptr;
    case EvpClauseKind::kInList:
      if (info.cls == KernelClass::kInt) return InListIntKernel;
      if (info.cls == KernelClass::kVarchar) return InListVarcharKernel;
      return nullptr;
  }
  return nullptr;
}

EvpColKernelFn EvpColKernelFor(const EvpClauseInfo& info) {
  switch (info.kind) {
    case EvpClauseKind::kCmp:
      return SelectCmpColKernel(info.cls, info.op);
    case EvpClauseKind::kLike:
      if (info.cls == KernelClass::kChar) {
        return SelectLikeColKernel<true>(info.like_mode, info.negated);
      }
      if (info.cls == KernelClass::kVarchar) {
        return SelectLikeColKernel<false>(info.like_mode, info.negated);
      }
      return nullptr;
    case EvpClauseKind::kInList:
      if (info.cls == KernelClass::kInt) return InListIntColKernel;
      if (info.cls == KernelClass::kVarchar) return InListVarcharColKernel;
      return nullptr;
  }
  return nullptr;
}

std::unique_ptr<EvpBee> TrySpecializePredicate(const Expr& expr,
                                               PlacementArena* arena,
                                               bool input_nullable) {
  (void)input_nullable;
  std::vector<EvpBee::Clause> clauses;
  std::vector<EvpClauseInfo> info;
  // Clause contexts capture pointers into these strings, so the vector must
  // never reallocate after a pointer is taken: reserve more slots than the
  // conjunct cap below can ever need.
  std::vector<std::string> owned;
  owned.reserve(64);

  std::vector<const Expr*> conjuncts;
  if (expr.kind() == ExprKind::kBool) {
    const auto& b = static_cast<const BoolExpr&>(expr);
    if (b.op() != BoolOp::kAnd) return nullptr;
    for (const ExprPtr& c : b.children()) {
      // Nested ANDs (e.g. from Between) flatten one level.
      if (c->kind() == ExprKind::kBool) {
        const auto& nb = static_cast<const BoolExpr&>(*c);
        if (nb.op() != BoolOp::kAnd) return nullptr;
        for (const ExprPtr& nc : nb.children()) conjuncts.push_back(nc.get());
      } else {
        conjuncts.push_back(c.get());
      }
    }
  } else {
    conjuncts.push_back(&expr);
  }
  if (conjuncts.size() > 48) return nullptr;

  for (const Expr* c : conjuncts) {
    if (!LowerClause(*c, arena, &clauses, &info, &owned)) return nullptr;
  }
  return std::make_unique<EvpBee>(std::move(clauses), std::move(info),
                                  std::move(owned));
}

std::unique_ptr<EvpBee> TrySpecializePredicateChecked(
    const Expr& expr, PlacementArena* arena, bool input_nullable,
    const std::vector<ColMeta>* input_meta, VerifyMode mode) {
  std::unique_ptr<EvpBee> bee =
      TrySpecializePredicate(expr, arena, input_nullable);
  if (bee == nullptr || mode == VerifyMode::kOff) return bee;
  Status st = BeeVerifier::VerifyEvp(*bee, expr, input_meta);
  if (st.ok()) {
    // Query bees never invoke a compiler at query-preparation time, so the
    // emitted C is a specification artifact: linted here, never compiled.
    st = BeeVerifier::LintNativeEvpSource(
        NativeJit::GenerateEvpSource(*bee, "evp_bee"), *bee);
  }
  if (!st.ok() && BeeVerifier::ReportReject("evp", "query:evp", st, mode)) {
    return nullptr;
  }
  return bee;
}

/// --- EVJ kernels -------------------------------------------------------------

namespace {

uint64_t HashIntK(const EvjKey&, Datum v, uint64_t seed) {
  return HashInt64(DatumToInt64(v), seed);
}
uint64_t HashFloatK(const EvjKey&, Datum v, uint64_t seed) {
  return HashInt64(static_cast<int64_t>(v), seed);
}
uint64_t HashCharK(const EvjKey& k, Datum v, uint64_t seed) {
  return Hash64(DatumToPointer(v), static_cast<size_t>(k.charlen), seed);
}
uint64_t HashVarcharK(const EvjKey&, Datum v, uint64_t seed) {
  const char* p = DatumToPointer(v);
  return Hash64(VarlenaPayload(p), VarlenaPayloadSize(p), seed);
}

bool EqIntK(const EvjKey&, Datum a, Datum b) {
  return DatumToInt64(a) == DatumToInt64(b);
}
bool EqFloatK(const EvjKey&, Datum a, Datum b) {
  return DatumToFloat64(a) == DatumToFloat64(b);
}
bool EqCharK(const EvjKey& k, Datum a, Datum b) {
  return std::memcmp(DatumToPointer(a), DatumToPointer(b),
                     static_cast<size_t>(k.charlen)) == 0;
}
bool EqVarcharK(const EvjKey&, Datum a, Datum b) {
  const char* pa = DatumToPointer(a);
  const char* pb = DatumToPointer(b);
  uint32_t la = VarlenaPayloadSize(pa);
  uint32_t lb = VarlenaPayloadSize(pb);
  return la == lb && std::memcmp(VarlenaPayload(pa), VarlenaPayload(pb),
                                 la) == 0;
}

}  // namespace

EvjHashFn EvjHashKernelFor(KernelClass cls) {
  switch (cls) {
    case KernelClass::kInt:
      return HashIntK;
    case KernelClass::kFloat:
      return HashFloatK;
    case KernelClass::kChar:
      return HashCharK;
    case KernelClass::kVarchar:
      return HashVarcharK;
  }
  return nullptr;
}

EvjEqualFn EvjEqualKernelFor(KernelClass cls) {
  switch (cls) {
    case KernelClass::kInt:
      return EqIntK;
    case KernelClass::kFloat:
      return EqFloatK;
    case KernelClass::kChar:
      return EqCharK;
    case KernelClass::kVarchar:
      return EqVarcharK;
  }
  return nullptr;
}

std::unique_ptr<EvjBee> TrySpecializeJoinKeys(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, PlacementArena* arena) {
  std::vector<EvjBee::Key> keys;
  for (size_t i = 0; i < outer_cols.size(); ++i) {
    EvjKey ctx{};
    ctx.outer_att = outer_cols[i];
    ctx.inner_att = inner_cols[i];
    ctx.charlen = key_meta[i].attlen;
    EvjBee::Key key{};
    key.ctx = arena->New(ctx);
    key.hash = EvjHashKernelFor(ClassOf(key_meta[i].type));
    key.equal = EvjEqualKernelFor(ClassOf(key_meta[i].type));
    keys.push_back(key);
  }
  return std::make_unique<EvjBee>(std::move(keys));
}

std::unique_ptr<EvjBee> TrySpecializeJoinKeysChecked(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, PlacementArena* arena,
    int outer_width, int inner_width, VerifyMode mode) {
  std::unique_ptr<EvjBee> bee =
      TrySpecializeJoinKeys(outer_cols, inner_cols, key_meta, arena);
  if (bee == nullptr || mode == VerifyMode::kOff) return bee;
  Status st = BeeVerifier::VerifyEvj(*bee, outer_cols, inner_cols, key_meta,
                                     outer_width, inner_width);
  if (!st.ok() && BeeVerifier::ReportReject("evj", "query:evj", st, mode)) {
    return nullptr;
  }
  return bee;
}

}  // namespace microspec::bee
