#ifndef MICROSPEC_BEE_DEFORM_PROGRAM_H_
#define MICROSPEC_BEE_DEFORM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bee/tuple_bee.h"
#include "catalog/schema.h"
#include "common/datum.h"
#include "common/status.h"

namespace microspec::bee {

/// --- The "program" bee backend ---------------------------------------------
/// At bee-creation time (CREATE TABLE) the relation's schema is lowered into
/// a straight-line program: one step per attribute with every offset,
/// alignment, length, and type dispatch resolved ahead of time. Executing
/// the program replaces the generic metadata-consulting loop of Listing 1
/// with the specialized logic of Listing 2. It is the portable counterpart
/// of the native backend (bee/native_jit.h), used when invoking a C compiler
/// at runtime is unavailable or undesirable.
///
/// Fixed-offset steps carry their precomputed byte offset; once a
/// variable-length attribute is passed, subsequent steps switch to dynamic
/// ops that carry only the alignment to apply. Specialized (tuple-bee)
/// attributes become section loads through the tuple's beeID — the "holes"
/// of the paper's Listing 2.

enum class DeformOp : uint8_t {
  kFixed1,        // byval 1-byte at fixed offset
  kFixed4,        // byval 4-byte at fixed offset (sign-extended)
  kFixed8,        // byval 8-byte at fixed offset
  kFixedChar,     // char(n) pointer at fixed offset
  kFixedVarlena,  // varlena pointer at fixed offset; starts dynamic mode
  kDyn1,          // dynamic-offset variants (align, load, advance)
  kDyn4,
  kDyn8,
  kDynChar,
  kDynVarlena,
  kSection,  // tuple-bee hole: values[out] = section->datums[slot]
};

struct DeformStep {
  DeformOp op;
  uint8_t align;    // alignment applied before a dynamic load
  bool maybe_null;  // stored attribute is nullable: test the bitmap
  uint16_t out;     // logical attribute number (ascending across steps)
  uint16_t stored;  // stored attribute ordinal (bitmap position)
  uint32_t arg;  // fixed offset (kFixed*), section slot (kSection), unused else
  uint32_t len;  // char(n) length
};

/// A compiled GCL (GetColumnsToLongs) bee routine for one relation.
class DeformProgram {
 public:
  /// Lowers `schema` (the logical schema) into a program. `spec_cols` are
  /// the tuple-bee specialized columns (empty when tuple bees are off);
  /// `stored_schema` is the physical layout actually on the page (logical
  /// schema minus specialized columns).
  static DeformProgram Compile(const Schema& logical,
                               const Schema& stored,
                               const std::vector<int>& spec_cols);

  /// Executes the bee routine: extracts the first `natts` logical
  /// attributes of `tuple`. `bees` supplies tuple-bee sections (may be
  /// nullptr when the program contains no kSection steps). Falls back to the
  /// generic loop over the stored schema for tuples carrying NULLs (the
  /// specialized fast path assumes the fixed layout, exactly like the
  /// paper's orders bee, whose schema forbids NULLs).
  void Execute(const char* tuple, int natts, Datum* values, bool* isnull,
               const TupleBeeManager* bees) const;

  /// Batch (GCL-B) variant of the bee routine: deforms `ntuples` tuples —
  /// all live tuples of one pinned page — in a single call, writing
  /// column-major: cols[a][r] / nulls[a][r] receive logical attribute `a`
  /// of tuples[r]. The per-call dispatch is amortized across the page;
  /// tuples carrying NULLs take the null-aware step list individually, so
  /// a mixed page stays exact.
  void ExecuteBatch(const char* const* tuples, int ntuples, int natts,
                    Datum* const* cols, bool* const* nulls,
                    const TupleBeeManager* bees) const;

  const std::vector<DeformStep>& steps() const { return steps_; }
  /// The all-dynamic, null-checked variant taken by tuples carrying NULLs.
  /// Exposed so the bee verifier can check it agrees with the fast path.
  const std::vector<DeformStep>& null_steps() const { return null_steps_; }
  bool all_not_null() const { return all_not_null_; }

  /// Disassembles the program (debugging / the bee_inspector example).
  std::string ToString() const;

 private:
  /// Null-aware variant: every step dynamic, with a bitmap test for steps
  /// whose stored attribute is nullable. Still straight-line specialized
  /// code — no catalog consultation, no type dispatch — just one extra
  /// branch per nullable attribute (used only for tuples that carry NULLs).
  void ExecuteWithNulls(const char* tuple, int natts, Datum* values,
                        bool* isnull, const TupleBeeManager* bees) const;

  std::vector<DeformStep> steps_;
  std::vector<DeformStep> null_steps_;  // all-dynamic, null-checked variant
  const Schema* logical_ = nullptr;
  const Schema* stored_ = nullptr;
  std::vector<int> spec_cols_;
  /// logical attno -> stored attno (-1 for specialized columns).
  std::vector<int> logical_to_stored_;
  /// logical attno -> section slot (-1 for stored columns).
  std::vector<int> logical_to_slot_;
  bool all_not_null_ = true;
  int logical_natts_ = 0;
};

/// --- The SCL (SetColumnsFromLongs) form program -----------------------------

enum class FormOp : uint8_t {
  kPut1,
  kPut4,
  kPut8,
  kPutChar,
  kPutVarlena,
};

struct FormStep {
  FormOp op;
  uint8_t align;
  bool maybe_null;  // stored attribute is nullable
  uint16_t in;      // logical attribute number to take the value from
  uint16_t stored;  // stored attribute ordinal (bitmap position)
  uint32_t len;     // char(n) length
};

/// A compiled SCL bee routine: serializes logical values into the stored
/// tuple layout (skipping specialized columns — their values live in the
/// tuple bee's data section, keyed by the beeID placed in the header).
class FormProgram {
 public:
  static FormProgram Compile(const Schema& logical, const Schema& stored,
                             const std::vector<int>& spec_cols);

  /// Appends the formed tuple to `out` (resizing it). `bee_id` is stored in
  /// the header when `has_bee_id`. Values must all be non-NULL; tuples that
  /// carry NULLs go through ExecuteNullable.
  void Execute(const Datum* values, uint8_t bee_id, bool has_bee_id,
               std::string* out) const;

  /// Null-aware specialized form: writes the null bitmap and skips NULL
  /// attribute storage, still with all offsets/types resolved ahead of time.
  void ExecuteNullable(const Datum* values, const bool* isnull,
                       uint8_t bee_id, bool has_bee_id,
                       std::string* out) const;

  /// True when no value is NULL so the fast path applies.
  bool applicable(const bool* isnull) const {
    if (isnull == nullptr) return true;
    for (int i = 0; i < logical_natts_; ++i) {
      if (isnull[i]) return false;
    }
    return true;
  }

  const std::vector<FormStep>& steps() const { return steps_; }
  uint32_t header_size() const { return header_size_; }
  uint32_t header_size_nulls() const { return header_size_nulls_; }

 private:
  std::vector<FormStep> steps_;
  uint32_t header_size_ = 0;        // no-nulls header size (MAXALIGNed)
  uint32_t header_size_nulls_ = 0;  // header size with a null bitmap
  int logical_natts_ = 0;
  int stored_natts_ = 0;
};

}  // namespace microspec::bee

#endif  // MICROSPEC_BEE_DEFORM_PROGRAM_H_
