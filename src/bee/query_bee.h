#ifndef MICROSPEC_BEE_QUERY_BEE_H_
#define MICROSPEC_BEE_QUERY_BEE_H_

#include <memory>
#include <string>
#include <vector>

#include "bee/placement.h"
#include "exec/access.h"
#include "expr/expr.h"

namespace microspec::bee {

enum class VerifyMode : uint8_t;  // bee/verifier.h

/// --- Query bees: EVP and EVJ -------------------------------------------------
/// Query bees must be created at query-preparation time without invoking a
/// compiler (Section III-B). Following the paper's mechanism, all object-code
/// variants are enumerated and compiled ahead of time — here as C++ template
/// instantiations over (type class x operator) — and bee creation merely
/// selects a variant and patches the value holes (attribute number, constant)
/// into a per-clause context block allocated from the bee placement arena.

/// Type classes the kernels are monomorphized over.
enum class KernelClass : uint8_t { kInt, kFloat, kChar, kVarchar };

/// A clause context: the EVP bee's "data section" holding the patched-in
/// attribute number and comparison constant.
struct EvpClause {
  int32_t attno;
  int32_t charlen;       // char(n) length for kChar operands
  Datum constant;        // patched constant (points into owned_bytes if byref)
  const char* aux;       // LIKE needle / IN-list storage
  uint32_t aux_len;      // LIKE needle length / IN-list item count
  bool nullable;         // whether a null check must be emitted
};

/// Which kernel family a clause was lowered into. Recorded next to every
/// clause so the verifier (and the native-source emitter) can re-derive the
/// exact ahead-of-time monomorphization the clause claims to use and check
/// the function pointers against the kernel registry.
enum class EvpClauseKind : uint8_t { kCmp, kLike, kInList };

/// The monomorphization coordinates of one clause: enough to look the kernel
/// pair back up in the registry, independently of the function pointers the
/// bee actually carries.
struct EvpClauseInfo {
  EvpClauseKind kind = EvpClauseKind::kCmp;
  KernelClass cls = KernelClass::kInt;
  CmpOp op = CmpOp::kEq;                              // kCmp only
  LikeExpr::Mode like_mode = LikeExpr::Mode::kExact;  // kLike only
  bool negated = false;                               // kLike only
};

/// One monomorphized clause kernel: returns the clause verdict for a row.
using EvpKernelFn = bool (*)(const EvpClause& c, const Datum* values,
                             const bool* isnull);

/// Value-form sibling of EvpKernelFn, used by the batch (EVP-B) path: the
/// clause verdict for one column cell. The attribute load happens in the
/// caller's clause-major loop over the batch's column array — the kernels
/// share their comparison cores with the row-form variants, so both forms
/// are the same ahead-of-time enumerated object code.
using EvpColKernelFn = bool (*)(const EvpClause& c, Datum v, bool isnull);

/// An EVP query bee: a conjunction of monomorphized clause kernels replacing
/// the generic expression-tree walk.
class EvpBee final : public PredicateEvaluator {
 public:
  struct Clause {
    EvpKernelFn fn;
    EvpColKernelFn col_fn;  // value-form sibling (same monomorphization)
    const EvpClause* ctx;   // lives in the placement arena
  };

  EvpBee(std::vector<Clause> clauses, std::vector<EvpClauseInfo> info,
         std::vector<std::string> owned_bytes)
      : clauses_(std::move(clauses)),
        info_(std::move(info)),
        owned_bytes_(std::move(owned_bytes)) {}

  bool Matches(const ExecRow& row) const override {
    uint64_t ops = 0;
    bool result = true;
    for (const Clause& cl : clauses_) {
      ops += 3;  // the bee's whole per-clause cost
      if (!cl.fn(*cl.ctx, row.values, row.isnull)) {
        result = false;
        break;
      }
    }
    workops::Bump(ops);
    return result;
  }

  /// EVP-B: evaluates the conjunction over a batch, compacting the selection
  /// vector in place. Clause-major: each kernel streams down one column
  /// array (the batch's native layout) and rows failing a clause drop out
  /// before the next clause reads them — NULL cells fail a clause exactly
  /// as in the row form.
  int MatchBatch(const Datum* const* cols, const bool* const* nulls,
                 int ncols, int* sel, int nsel) const override {
    (void)ncols;
    uint64_t ops = 0;
    for (const Clause& cl : clauses_) {
      const Datum* col = cols[cl.ctx->attno];
      const bool* nul = nulls[cl.ctx->attno];
      // 2 per row entering the clause: the batch form amortizes the
      // per-row dispatch share of the scalar bee's 3-op clause cost.
      ops += 1 + 2 * static_cast<uint64_t>(nsel);
      int out = 0;
      for (int i = 0; i < nsel; ++i) {
        const int r = sel[i];
        if (cl.col_fn(*cl.ctx, col[r], nul[r])) sel[out++] = r;
      }
      nsel = out;
      if (nsel == 0) break;
    }
    workops::Bump(ops);
    return nsel;
  }

  size_t num_clauses() const { return clauses_.size(); }

  /// Verifier access: the compiled clause program and its monomorphization
  /// coordinates, parallel vectors of equal length.
  const std::vector<Clause>& clauses() const { return clauses_; }
  const std::vector<EvpClauseInfo>& clause_info() const { return info_; }

 private:
  std::vector<Clause> clauses_;
  std::vector<EvpClauseInfo> info_;
  std::vector<std::string> owned_bytes_;  // backing for byref constants
};

/// --- Kernel registry ---------------------------------------------------------
/// The verifier's independent view of the ahead-of-time kernel catalog: given
/// a clause's monomorphization coordinates it returns the one row-form /
/// value-form kernel pair those coordinates name. A bee whose function
/// pointers disagree with the registry is carrying code the catalog never
/// enumerated (or a row/batch pair that is not the same monomorphization).

/// Maps a column type to its kernel class; mirrors the specializer's lowering.
KernelClass EvpKernelClassOf(TypeId t);

/// Registry lookups; return nullptr only for kind/class combinations the
/// catalog does not enumerate (e.g. an IN-list over floats).
EvpKernelFn EvpKernelFor(const EvpClauseInfo& info);
EvpColKernelFn EvpColKernelFor(const EvpClauseInfo& info);

/// Attempts to build an EVP bee for `expr` evaluated against rows whose
/// columns may be NULL only when `input_nullable` (per-column nullability is
/// taken from VarExpr metadata being unavailable, so a conservative flag is
/// used). Returns nullptr when the predicate shape is not specializable —
/// the caller falls back to the generic interpreter, as in the paper.
std::unique_ptr<EvpBee> TrySpecializePredicate(const Expr& expr,
                                               PlacementArena* arena,
                                               bool input_nullable);

/// Install-site entry point: builds the bee, then runs it through
/// BeeVerifier::VerifyEvp (against `expr` and, when non-null, the operator's
/// `input_meta`) and the native-source lint under `mode`. A rejection is
/// routed through BeeVerifier::ReportReject (telemetry counter + trace
/// event); under kEnforce the bee is discarded and nullptr returned so the
/// caller falls back to the generic interpreter.
std::unique_ptr<EvpBee> TrySpecializePredicateChecked(
    const Expr& expr, PlacementArena* arena, bool input_nullable,
    const std::vector<ColMeta>* input_meta, VerifyMode mode);

/// --- EVJ ---------------------------------------------------------------------

/// Per-key context for the EVJ bee.
struct EvjKey {
  int32_t outer_att;
  int32_t inner_att;
  int32_t charlen;
};

using EvjHashFn = uint64_t (*)(const EvjKey& k, Datum v, uint64_t seed);
using EvjEqualFn = bool (*)(const EvjKey& k, Datum a, Datum b);

/// An EVJ query bee: monomorphized hash/equality kernels with attribute
/// numbers patched into per-key contexts, replacing the generic per-probe
/// type dispatch.
class EvjBee final : public JoinKeyEvaluator {
 public:
  struct Key {
    const EvjKey* ctx;
    EvjHashFn hash;
    EvjEqualFn equal;
  };

  explicit EvjBee(std::vector<Key> keys) : keys_(std::move(keys)) {}

  uint64_t HashOuter(const Datum* values, const bool* isnull) const override {
    uint64_t h = 0;
    for (const Key& k : keys_) {
      workops::Bump(2);
      if (isnull != nullptr && isnull[k.ctx->outer_att]) continue;
      h = k.hash(*k.ctx, values[k.ctx->outer_att], h);
    }
    return h;
  }
  uint64_t HashInner(const Datum* values, const bool* isnull) const override {
    uint64_t h = 0;
    for (const Key& k : keys_) {
      workops::Bump(2);
      if (isnull != nullptr && isnull[k.ctx->inner_att]) continue;
      h = k.hash(*k.ctx, values[k.ctx->inner_att], h);
    }
    return h;
  }
  bool KeysEqual(const Datum* outer_values, const bool* outer_isnull,
                 const Datum* inner_values,
                 const bool* inner_isnull) const override {
    for (const Key& k : keys_) {
      workops::Bump(2);
      if ((outer_isnull != nullptr && outer_isnull[k.ctx->outer_att]) ||
          (inner_isnull != nullptr && inner_isnull[k.ctx->inner_att])) {
        return false;
      }
      if (!k.equal(*k.ctx, outer_values[k.ctx->outer_att],
                   inner_values[k.ctx->inner_att])) {
        return false;
      }
    }
    return true;
  }

  /// Verifier access: the compiled key program.
  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
};

/// Registry lookups for the EVJ hash/equality kernel pair of a key class.
EvjHashFn EvjHashKernelFor(KernelClass cls);
EvjEqualFn EvjEqualKernelFor(KernelClass cls);

/// Builds an EVJ bee for the given key columns, or nullptr if a key type is
/// not specializable.
std::unique_ptr<EvjBee> TrySpecializeJoinKeys(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, PlacementArena* arena);

/// Install-site entry point: builds the bee, then verifies it with
/// BeeVerifier::VerifyEvj under `mode`. `outer_width`/`inner_width` bound the
/// key attribute numbers; pass 0 when a side's width is unknown to skip its
/// range check. Rejections are reported like TrySpecializePredicateChecked.
std::unique_ptr<EvjBee> TrySpecializeJoinKeysChecked(
    const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
    const std::vector<ColMeta>& key_meta, PlacementArena* arena,
    int outer_width, int inner_width, VerifyMode mode);

}  // namespace microspec::bee

#endif  // MICROSPEC_BEE_QUERY_BEE_H_
