#include "bee/forge.h"

#include <algorithm>
#include <cstdio>

#include "bee/bee_module.h"
#include "bee/native_jit.h"
#include "common/telemetry.h"

namespace microspec::bee {

namespace {

/// The process-wide forge event trace: one Record per lifecycle transition.
/// Events are per-compile (rare), so routing every forge in the process into
/// one ring keeps bee_inspector/SnapshotTelemetry trivially complete.
void Trace(telemetry::ForgeEventKind kind, const std::string& relation,
           uint64_t duration_ns = 0) {
  telemetry::Registry::Global().forge_trace()->Record(kind, relation,
                                                      duration_ns);
}

int AutoWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 2) return 1;
  return 2;
}

}  // namespace

const char* ForgePhaseName(ForgePhase phase) {
  switch (phase) {
    case ForgePhase::kProgram:   return "program";
    case ForgePhase::kPending:   return "pending";
    case ForgePhase::kCompiling: return "compiling";
    case ForgePhase::kPromoted:  return "promoted";
    case ForgePhase::kPinned:    return "pinned";
  }
  return "?";
}

Forge::Forge(NativeJit* jit, VerifyMode verify, std::string cache_dir,
             ForgeOptions options)
    : jit_(jit),
      verify_(verify),
      cache_dir_(std::move(cache_dir)),
      options_(options) {
  if (options_.async) {
    int workers =
        options_.workers > 0 ? options_.workers : AutoWorkers();
    pool_ = std::make_unique<ThreadPool>(workers);
  }
}

Forge::~Forge() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
    stats_.cancelled += pending_.size();
    for (const Job& job : pending_) {
      Trace(telemetry::ForgeEventKind::kCancelled, job.state->table_name());
    }
    pending_.clear();
  }
  pending_cv_.notify_all();
  idle_cv_.notify_all();
  pool_.reset();  // joins workers; an in-flight compile finishes first
}

void Forge::Enqueue(std::shared_ptr<RelationBeeState> state) {
  state->SetForgePhase(ForgePhase::kPending);
  Trace(telemetry::ForgeEventKind::kQueued, state->table_name());
  if (!options_.async) {
    // Sync (paper Section III-B) mode: one attempt on the DDL thread — the
    // baseline bench_forge measures async DDL latency against. Starting at
    // the final attempt makes any failure pin immediately; retry/backoff is
    // an async-tier concern.
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.enqueued;
    }
    Job job;
    job.state = std::move(state);
    job.attempts = options_.max_attempts - 1;
    ProcessJob(std::move(job));
    return;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stop_) return;
    ++stats_.enqueued;
    Job job;
    job.state = std::move(state);
    job.not_before = std::chrono::steady_clock::now();
    pending_.push_back(std::move(job));
  }
  // One pool task per pending job, so a task can always either claim a job
  // or exit knowing another task covers the remainder.
  pool_->Submit([this] { RunOne(); });
  pending_cv_.notify_one();
}

void Forge::Quiesce() {
  std::unique_lock<std::mutex> guard(mutex_);
  idle_cv_.wait(guard, [this] {
    return stop_ || (pending_.empty() && in_flight_ == 0);
  });
}

ForgeStats Forge::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  ForgeStats s = stats_;
  s.queue_depth = static_cast<int>(pending_.size());
  s.in_flight = in_flight_;
  return s;
}

void Forge::RunOne() {
  std::unique_lock<std::mutex> guard(mutex_);
  for (;;) {
    if (stop_ || pending_.empty()) return;
    // Hotness-driven dispatch: claim the eligible (backoff elapsed) job
    // whose relation has served the most deform/form calls. Hotness is
    // re-read here, at claim time, so the order tracks a shifting workload
    // rather than the enqueue order.
    auto now = std::chrono::steady_clock::now();
    size_t best = pending_.size();
    uint64_t best_hotness = 0;
    auto earliest = std::chrono::steady_clock::time_point::max();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].not_before > now) {
        earliest = std::min(earliest, pending_[i].not_before);
        continue;
      }
      uint64_t hotness = pending_[i].state->invocations();
      if (best == pending_.size() || hotness > best_hotness) {
        best = i;
        best_hotness = hotness;
      }
    }
    if (best == pending_.size()) {
      // Everything pending is in a backoff window; sleep until the first
      // window closes (or new work / shutdown wakes us).
      pending_cv_.wait_until(guard, earliest);
      continue;
    }
    Job job = std::move(pending_[best]);
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(best));
    ++in_flight_;
    guard.unlock();
    ProcessJob(std::move(job));
    guard.lock();
    --in_flight_;
    if (pending_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    return;
  }
}

void Forge::ProcessJob(Job job) {
  RelationBeeState* state = job.state.get();
  if (state->collected()) {
    Trace(telemetry::ForgeEventKind::kCancelled, state->table_name());
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.cancelled;
    return;
  }
  state->SetForgePhase(ForgePhase::kCompiling);
  Trace(telemetry::ForgeEventKind::kStarted, state->table_name());

  // Off-thread verification — the same VerifyMode path CREATE TABLE used to
  // run inline. A reject never retries (the generated source is
  // deterministic); under kEnforce it pins the relation to the program
  // tier, under kWarn it is logged and compilation proceeds.
  if (verify_ != VerifyMode::kOff) {
    Status st = BeeVerifier::LintNativeGclSource(
        state->native_source(), state->logical_schema(),
        state->stored_schema(), state->spec_cols());
    if (!st.ok()) {
      // Rejections surface through telemetry (counter + trace event), not
      // stderr; under kEnforce the relation pins to the program tier.
      if (BeeVerifier::ReportReject("native-gcl", state->table_name(), st,
                                    verify_)) {
        state->PinToProgram("native bee rejected: " + st.message());
        Trace(telemetry::ForgeEventKind::kPinned, state->table_name());
        std::lock_guard<std::mutex> guard(mutex_);
        ++stats_.failures;
        ++stats_.pinned;
        return;
      }
    }
    // The log applier rides in the same translation unit and promotes with
    // the GCL pair, so a rejected applier pins the whole relation: better a
    // program-tier scan path than a native recovery path with a wrong
    // burned-in constant.
    Status lst = BeeVerifier::LintNativeLogApplierSource(
        state->native_source(), state->logical_schema(),
        state->stored_schema(), state->spec_cols());
    if (!lst.ok()) {
      if (BeeVerifier::ReportReject("native-logapp", state->table_name(), lst,
                                    verify_)) {
        state->PinToProgram("native log bee rejected: " + lst.message());
        Trace(telemetry::ForgeEventKind::kPinned, state->table_name());
        std::lock_guard<std::mutex> guard(mutex_);
        ++stats_.failures;
        ++stats_.pinned;
        return;
      }
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  // One compile covers all three routines: the scalar GCL entry point, its
  // GCL-B page-batch sibling, and the log-bee applier live in the same
  // generated translation unit and promote together.
  Result<NativeGclTriple> fn = jit_->CompileSourceTriple(
      state->native_source(), cache_dir_, state->native_symbol());
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (fn.ok()) {
    state->PublishNative(fn.value().scalar, fn.value().batch,
                         fn.value().log_apply);
    Trace(telemetry::ForgeEventKind::kSucceeded, state->table_name(),
          static_cast<uint64_t>(seconds * 1e9));
    std::lock_guard<std::mutex> guard(mutex_);
    ++stats_.promotions;
    stats_.compile_seconds_total += seconds;
    stats_.compile_seconds_max = std::max(stats_.compile_seconds_max, seconds);
    return;
  }

  std::unique_lock<std::mutex> guard(mutex_);
  ++stats_.failures;
  ++job.attempts;
  if (job.attempts >= options_.max_attempts || stop_ || !options_.async) {
    ++stats_.pinned;
    guard.unlock();
    state->PinToProgram(fn.status().message());
    Trace(telemetry::ForgeEventKind::kPinned, state->table_name());
    return;
  }
  // Capped exponential backoff before the next attempt; transient failures
  // (compiler farm hiccups, disk pressure) get another chance, persistent
  // ones converge on the pin above.
  ++stats_.retries;
  Trace(telemetry::ForgeEventKind::kRetried, state->table_name());
  int64_t backoff_ms = static_cast<int64_t>(options_.backoff_base_ms)
                       << (job.attempts - 1);
  backoff_ms = std::min<int64_t>(backoff_ms, options_.backoff_cap_ms);
  job.not_before = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(backoff_ms);
  job.state->SetForgePhase(ForgePhase::kPending);
  pending_.push_back(std::move(job));
  guard.unlock();
  pool_->Submit([this] { RunOne(); });
  pending_cv_.notify_one();
}

}  // namespace microspec::bee
