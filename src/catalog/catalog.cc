#include "catalog/catalog.h"

#include <cstdio>

namespace microspec {

Result<IndexInfo*> TableInfo::CreateIndex(const std::string& name,
                                          std::vector<int> key_columns) {
  for (int col : key_columns) {
    if (col < 0 || col >= schema_.natts()) {
      return Status::InvalidArgument("index key column out of range");
    }
    TypeId t = schema_.column(col).type();
    if (t != TypeId::kInt32 && t != TypeId::kInt64 && t != TypeId::kDate) {
      return Status::NotSupported("index key columns must be integer-typed");
    }
  }
  for (const auto& idx : indexes_) {
    if (idx->name == name) {
      return Status::AlreadyExists("index " + name);
    }
  }
  auto info = std::make_unique<IndexInfo>();
  info->name = name;
  info->key_columns = std::move(key_columns);
  info->btree = std::make_unique<BTreeIndex>();
  indexes_.push_back(std::move(info));
  return indexes_.back().get();
}

IndexInfo* TableInfo::GetIndex(const std::string& name) {
  for (const auto& idx : indexes_) {
    if (idx->name == name) return idx.get();
  }
  return nullptr;
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        Schema schema) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  return CreateTableLocked(next_id_++, name, std::move(schema));
}

Result<TableInfo*> Catalog::CreateTableWithId(TableId id,
                                              const std::string& name,
                                              Schema schema) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  if (by_id_.count(id) != 0) {
    return Status::AlreadyExists("table id " + std::to_string(id));
  }
  if (id >= next_id_) next_id_ = id + 1;
  return CreateTableLocked(id, name, std::move(schema));
}

Result<TableInfo*> Catalog::CreateTableLocked(TableId id,
                                              const std::string& name,
                                              Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name);
  }
  if (schema.natts() == 0) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto dm = std::make_unique<DiskManager>();
  std::string path = dir_ + "/t" + std::to_string(id) + "_" + name + ".dat";
  MICROSPEC_RETURN_NOT_OK(dm->Open(path, pool_->stats()));
  auto heap = std::make_unique<HeapFile>(pool_, std::move(dm));
  auto info =
      std::make_unique<TableInfo>(id, name, std::move(schema), std::move(heap));
  TableInfo* raw = info.get();
  tables_[name] = std::move(info);
  by_id_[id] = raw;
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  std::string path = it->second->heap()->disk_manager()->path();
  by_id_.erase(it->second->id());
  tables_.erase(it);  // ~HeapFile unregisters from the buffer pool
  std::remove(path.c_str());
  return Status::OK();
}

TableInfo* Catalog::GetTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

TableInfo* Catalog::GetTable(TableId id) {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<TableInfo*> Catalog::AllTables() {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  std::vector<TableInfo*> out;
  out.reserve(tables_.size());
  for (auto& [_, t] : tables_) out.push_back(t.get());
  return out;
}

}  // namespace microspec
