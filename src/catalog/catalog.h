#ifndef MICROSPEC_CATALOG_CATALOG_H_
#define MICROSPEC_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace microspec {

using TableId = uint32_t;

/// A secondary/primary access path on a table: a B+tree over a composite of
/// integer-typed columns.
struct IndexInfo {
  std::string name;
  std::vector<int> key_columns;  // column ordinals in the table schema
  std::unique_ptr<BTreeIndex> btree;
};

/// Everything the engine knows about one relation: schema, heap storage,
/// indexes, and a table-level reader/writer lock used by the TPC-C driver
/// (the engine provides isolation at table granularity; see README).
class TableInfo {
 public:
  TableInfo(TableId id, std::string name, Schema schema,
            std::unique_ptr<HeapFile> heap)
      : id_(id),
        name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(std::move(heap)) {}
  MICROSPEC_DISALLOW_COPY_AND_MOVE(TableInfo);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapFile* heap() { return heap_.get(); }

  uint64_t tuple_count() const {
    return tuple_count_.load(std::memory_order_relaxed);
  }
  void AddTuples(int64_t delta) {
    tuple_count_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
  }

  /// Creates a B+tree index over `key_columns` (must be integer-typed).
  /// The index starts empty; callers populate it (or use Engine helpers).
  Result<IndexInfo*> CreateIndex(const std::string& name,
                                 std::vector<int> key_columns);
  IndexInfo* GetIndex(const std::string& name);
  const std::vector<std::unique_ptr<IndexInfo>>& indexes() const {
    return indexes_;
  }

  /// Table-level lock: shared for readers, exclusive for writers.
  std::shared_mutex& lock() { return lock_; }

 private:
  TableId id_;
  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
  std::atomic<uint64_t> tuple_count_{0};
  std::shared_mutex lock_;
};

/// The system catalog: name -> TableInfo, backed by a database directory
/// (one heap file per relation plus a catalog file). This is the component
/// the paper's DDL Compiler consults; the bee module hooks relation-bee
/// creation into Catalog::CreateTable via the engine.
class Catalog {
 public:
  Catalog(std::string dir, BufferPool* pool)
      : dir_(std::move(dir)), pool_(pool) {}
  MICROSPEC_DISALLOW_COPY_AND_MOVE(Catalog);

  /// Creates a relation and its backing heap file.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// Recovery-time variant: re-creates a relation under the TableId the WAL
  /// recorded at its original CREATE TABLE, so logged TupleIds resolve to
  /// the same heap file. Re-opens (does not truncate) an existing heap file
  /// and keeps next_id_ above every replayed id.
  Result<TableInfo*> CreateTableWithId(TableId id, const std::string& name,
                                       Schema schema);

  /// Drops the relation, releasing its buffer-pool frames and deleting the
  /// heap file.
  Status DropTable(const std::string& name);

  /// nullptr when absent.
  TableInfo* GetTable(const std::string& name);
  TableInfo* GetTable(TableId id);

  std::vector<TableInfo*> AllTables();

  const std::string& dir() const { return dir_; }
  BufferPool* buffer_pool() { return pool_; }

 private:
  Result<TableInfo*> CreateTableLocked(TableId id, const std::string& name,
                                       Schema schema);

  std::string dir_;
  BufferPool* pool_;
  TableId next_id_ = 1;
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::unordered_map<TableId, TableInfo*> by_id_;
  std::shared_mutex mutex_;
};

}  // namespace microspec

#endif  // MICROSPEC_CATALOG_CATALOG_H_
