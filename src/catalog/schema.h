#ifndef MICROSPEC_CATALOG_SCHEMA_H_
#define MICROSPEC_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/column.h"
#include "common/result.h"
#include "common/status.h"

namespace microspec {

/// An ordered list of columns: the relation schema. Schemas are immutable
/// after construction except for the per-column attcacheoff caches.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  int natts() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// True if any column may be NULL; drives whether tuples carry a
  /// null bitmap and whether the deform loop must test it.
  bool has_nullable() const { return has_nullable_; }

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Serialization used by the catalog file and the bee cache (a bee is keyed
  /// by the schema it was specialized for).
  void Serialize(std::string* out) const;
  static Result<Schema> Deserialize(const std::string& in, size_t* pos);

  /// A stable fingerprint of the physical layout (types/lengths/nullability),
  /// used by the bee cache to detect schema changes that require bee
  /// reconstruction.
  uint64_t LayoutFingerprint() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
  bool has_nullable_ = false;
};

}  // namespace microspec

#endif  // MICROSPEC_CATALOG_SCHEMA_H_
