#ifndef MICROSPEC_CATALOG_COLUMN_H_
#define MICROSPEC_CATALOG_COLUMN_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/types.h"

namespace microspec {

/// Per-attribute catalog metadata, the analog of PostgreSQL's
/// Form_pg_attribute. The fields attlen / attalign / attcacheoff /
/// attnotnull are exactly the variables the paper's Listing 1 consults in the
/// generic slot_deform_tuple() loop — and exactly the invariants a relation
/// bee (GCL/SCL) folds into straight-line code at schema-definition time.
class Column {
 public:
  Column() = default;

  /// Creates a column of `type`. For kChar, `declared_length` is the fixed
  /// byte length (char(n)); it is ignored for other types.
  Column(std::string name, TypeId type, bool not_null = false,
         int32_t declared_length = 0)
      : name_(std::move(name)),
        type_(type),
        not_null_(not_null) {
    if (type == TypeId::kChar) {
      attlen_ = declared_length;
    } else {
      attlen_ = TypeFixedLength(type);
    }
    attalign_ = TypeAlign(type);
    byval_ = TypeByVal(type);
  }

  const std::string& name() const { return name_; }
  TypeId type() const { return type_; }

  /// Physical length in bytes; kVariableLength (-1) for varchar.
  int32_t attlen() const { return attlen_; }
  /// Required storage alignment: 1, 4, or 8.
  int32_t attalign() const { return attalign_; }
  /// Whether the value lives inside the Datum (true) or is a pointer (false).
  bool byval() const { return byval_; }
  /// NOT NULL constraint; a relation with all columns NOT NULL lets the GCL
  /// bee drop the null-bitmap test entirely (Section II).
  bool not_null() const { return not_null_; }

  /// Cached byte offset of this attribute within a tuple, or -1 when the
  /// offset is not constant (attribute preceded by a variable-length or
  /// nullable attribute). Maintained lazily by the generic deform loop, just
  /// like PG's attcacheoff. Benign write race under concurrency: all writers
  /// store the same value (as in PostgreSQL).
  int32_t attcacheoff() const { return attcacheoff_; }
  void set_attcacheoff(int32_t off) const { attcacheoff_ = off; }

  /// DBA annotation marking a low-cardinality attribute eligible for
  /// tuple-bee value specialization (Section IV-A "Annotations").
  bool low_cardinality() const { return low_cardinality_; }
  void set_low_cardinality(bool v) { low_cardinality_ = v; }

  bool operator==(const Column& other) const {
    return name_ == other.name_ && type_ == other.type_ &&
           attlen_ == other.attlen_ && not_null_ == other.not_null_ &&
           low_cardinality_ == other.low_cardinality_;
  }

 private:
  std::string name_;
  TypeId type_ = TypeId::kInt32;
  int32_t attlen_ = 4;
  int32_t attalign_ = 4;
  bool byval_ = true;
  bool not_null_ = false;
  bool low_cardinality_ = false;
  mutable int32_t attcacheoff_ = -1;
};

}  // namespace microspec

#endif  // MICROSPEC_CATALOG_COLUMN_H_
