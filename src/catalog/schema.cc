#include "catalog/schema.h"

#include <cstring>

#include "common/hash.h"

namespace microspec {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (const Column& c : columns_) {
    if (!c.not_null()) has_nullable_ = true;
  }
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    PutString(out, c.name());
    PutU32(out, static_cast<uint32_t>(c.type()));
    PutU32(out, static_cast<uint32_t>(c.attlen()));
    uint32_t flags = (c.not_null() ? 1u : 0u) | (c.low_cardinality() ? 2u : 0u);
    PutU32(out, flags);
  }
}

Result<Schema> Schema::Deserialize(const std::string& in, size_t* pos) {
  uint32_t natts = 0;
  if (!GetU32(in, pos, &natts)) {
    return Status::Corruption("schema: truncated natts");
  }
  std::vector<Column> cols;
  cols.reserve(natts);
  for (uint32_t i = 0; i < natts; ++i) {
    std::string name;
    uint32_t type = 0;
    uint32_t attlen = 0;
    uint32_t flags = 0;
    if (!GetString(in, pos, &name) || !GetU32(in, pos, &type) ||
        !GetU32(in, pos, &attlen) || !GetU32(in, pos, &flags)) {
      return Status::Corruption("schema: truncated column");
    }
    Column c(std::move(name), static_cast<TypeId>(type), (flags & 1u) != 0,
             static_cast<int32_t>(attlen));
    c.set_low_cardinality((flags & 2u) != 0);
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

uint64_t Schema::LayoutFingerprint() const {
  uint64_t h = 0x5CA1AB1EULL;
  for (const Column& c : columns_) {
    h = HashCombine(h, static_cast<uint64_t>(c.type()));
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(c.attlen())));
    h = HashCombine(h, c.not_null() ? 1 : 0);
    h = HashCombine(h, c.low_cardinality() ? 1 : 0);
  }
  return h;
}

}  // namespace microspec
