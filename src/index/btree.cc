#include "index/btree.h"

#include <vector>

namespace microspec {

namespace {
constexpr int kLeafCapacity = 64;
constexpr int kInternalCapacity = 64;  // max children; max keys is one less
}  // namespace

struct BTreeIndex::Node {
  bool is_leaf;
  int count;  // entries (leaf) or children (internal)
};

struct BTreeIndex::LeafNode {
  Node base;
  IndexKey keys[kLeafCapacity];
  TupleId tids[kLeafCapacity];
  LeafNode* next;
};

struct BTreeIndex::InternalNode {
  Node base;
  IndexKey seps[kInternalCapacity - 1];  // seps[i] = min key of children[i+1]
  Node* children[kInternalCapacity];
};

namespace {

BTreeIndex::LeafNode* NewLeaf() {
  auto* l = new BTreeIndex::LeafNode();
  l->base.is_leaf = true;
  l->base.count = 0;
  l->next = nullptr;
  return l;
}

BTreeIndex::InternalNode* NewInternal() {
  auto* n = new BTreeIndex::InternalNode();
  n->base.is_leaf = false;
  n->base.count = 0;
  return n;
}

/// Index of the first key in [keys, keys+n) that is >= key.
int LowerBoundIn(const IndexKey* keys, int n, const IndexKey& key) {
  int lo = 0;
  int hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into for `key`.
int ChildIndex(const BTreeIndex::InternalNode* n, const IndexKey& key) {
  int nkeys = n->base.count - 1;
  int i = 0;
  while (i < nkeys && key.Compare(n->seps[i]) >= 0) ++i;
  return i;
}

}  // namespace

BTreeIndex::BTreeIndex() { root_ = &NewLeaf()->base; }

BTreeIndex::~BTreeIndex() { FreeNode(root_); }

void BTreeIndex::FreeNode(Node* n) {
  if (!n->is_leaf) {
    auto* in = reinterpret_cast<InternalNode*>(n);
    for (int i = 0; i < n->count; ++i) FreeNode(in->children[i]);
    delete in;
  } else {
    delete reinterpret_cast<LeafNode*>(n);
  }
}

BTreeIndex::LeafNode* BTreeIndex::FindLeaf(const IndexKey& key) const {
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = reinterpret_cast<InternalNode*>(n);
    n = in->children[ChildIndex(in, key)];
  }
  return reinterpret_cast<LeafNode*>(n);
}

Status BTreeIndex::Insert(const IndexKey& key, TupleId tid) {
  // Descend remembering the path for split propagation.
  std::vector<std::pair<InternalNode*, int>> path;
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = reinterpret_cast<InternalNode*>(n);
    int ci = ChildIndex(in, key);
    path.emplace_back(in, ci);
    n = in->children[ci];
  }
  auto* leaf = reinterpret_cast<LeafNode*>(n);
  int pos = LowerBoundIn(leaf->keys, leaf->base.count, key);
  if (pos < leaf->base.count && leaf->keys[pos] == key) {
    return Status::AlreadyExists("btree: duplicate key");
  }

  // Insert into the leaf, splitting if full.
  if (leaf->base.count < kLeafCapacity) {
    for (int i = leaf->base.count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->tids[i] = leaf->tids[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->tids[pos] = tid;
    ++leaf->base.count;
    ++size_;
    return Status::OK();
  }

  // Split the leaf: left keeps the lower half.
  LeafNode* right = NewLeaf();
  int half = kLeafCapacity / 2;
  right->base.count = kLeafCapacity - half;
  for (int i = 0; i < right->base.count; ++i) {
    right->keys[i] = leaf->keys[half + i];
    right->tids[i] = leaf->tids[half + i];
  }
  leaf->base.count = half;
  right->next = leaf->next;
  leaf->next = right;
  if (pos < half) {
    // insert into left half
    for (int i = leaf->base.count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->tids[i] = leaf->tids[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->tids[pos] = tid;
    ++leaf->base.count;
  } else {
    int rpos = pos - half;
    for (int i = right->base.count; i > rpos; --i) {
      right->keys[i] = right->keys[i - 1];
      right->tids[i] = right->tids[i - 1];
    }
    right->keys[rpos] = key;
    right->tids[rpos] = tid;
    ++right->base.count;
  }
  ++size_;

  // Propagate the split upward.
  IndexKey sep = right->keys[0];
  Node* new_child = &right->base;
  while (!path.empty()) {
    auto [parent, ci] = path.back();
    path.pop_back();
    if (parent->base.count < kInternalCapacity) {
      // Shift separators/children right of ci.
      for (int i = parent->base.count - 1; i > ci; --i) {
        parent->children[i + 1] = parent->children[i];
      }
      for (int i = parent->base.count - 2; i >= ci; --i) {
        parent->seps[i + 1] = parent->seps[i];
      }
      parent->seps[ci] = sep;
      parent->children[ci + 1] = new_child;
      ++parent->base.count;
      return Status::OK();
    }
    // Split the internal node. children: kInternalCapacity, plus the new one
    // pending. Materialize the combined arrays, then divide.
    Node* children[kInternalCapacity + 1];
    IndexKey seps[kInternalCapacity];
    for (int i = 0; i < parent->base.count; ++i) children[i] = parent->children[i];
    for (int i = 0; i < parent->base.count - 1; ++i) seps[i] = parent->seps[i];
    for (int i = parent->base.count; i > ci + 1; --i) children[i] = children[i - 1];
    for (int i = parent->base.count - 1; i > ci; --i) seps[i] = seps[i - 1];
    children[ci + 1] = new_child;
    seps[ci] = sep;
    int total_children = parent->base.count + 1;
    int left_children = total_children / 2;
    InternalNode* rnode = NewInternal();
    rnode->base.count = total_children - left_children;
    IndexKey up_sep = seps[left_children - 1];
    parent->base.count = left_children;
    for (int i = 0; i < left_children; ++i) parent->children[i] = children[i];
    for (int i = 0; i < left_children - 1; ++i) parent->seps[i] = seps[i];
    for (int i = 0; i < rnode->base.count; ++i) {
      rnode->children[i] = children[left_children + i];
    }
    for (int i = 0; i < rnode->base.count - 1; ++i) {
      rnode->seps[i] = seps[left_children + i];
    }
    sep = up_sep;
    new_child = &rnode->base;
    if (path.empty()) {
      InternalNode* new_root = NewInternal();
      new_root->base.count = 2;
      new_root->children[0] = &parent->base;
      new_root->children[1] = new_child;
      new_root->seps[0] = sep;
      root_ = &new_root->base;
      return Status::OK();
    }
  }
  // Leaf was the root and split.
  InternalNode* new_root = NewInternal();
  new_root->base.count = 2;
  new_root->children[0] = &leaf->base;
  new_root->children[1] = new_child;
  new_root->seps[0] = sep;
  root_ = &new_root->base;
  return Status::OK();
}

Status BTreeIndex::Remove(const IndexKey& key) {
  LeafNode* leaf = FindLeaf(key);
  int pos = LowerBoundIn(leaf->keys, leaf->base.count, key);
  if (pos >= leaf->base.count || !(leaf->keys[pos] == key)) {
    return Status::NotFound("btree: key not present");
  }
  for (int i = pos; i < leaf->base.count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->tids[i] = leaf->tids[i + 1];
  }
  --leaf->base.count;
  --size_;
  return Status::OK();
}

bool BTreeIndex::Lookup(const IndexKey& key, TupleId* tid) const {
  const LeafNode* leaf = FindLeaf(key);
  int pos = LowerBoundIn(leaf->keys, leaf->base.count, key);
  if (pos < leaf->base.count && leaf->keys[pos] == key) {
    *tid = leaf->tids[pos];
    return true;
  }
  return false;
}

Status BTreeIndex::UpdateTid(const IndexKey& key, TupleId tid) {
  LeafNode* leaf = FindLeaf(key);
  int pos = LowerBoundIn(leaf->keys, leaf->base.count, key);
  if (pos >= leaf->base.count || !(leaf->keys[pos] == key)) {
    return Status::NotFound("btree: key not present");
  }
  leaf->tids[pos] = tid;
  return Status::OK();
}

const IndexKey& BTreeIndex::Iterator::key() const {
  const auto* leaf = static_cast<const BTreeIndex::LeafNode*>(leaf_);
  return leaf->keys[pos_];
}

TupleId BTreeIndex::Iterator::tid() const {
  const auto* leaf = static_cast<const BTreeIndex::LeafNode*>(leaf_);
  return leaf->tids[pos_];
}

void BTreeIndex::Iterator::Next() {
  const auto* leaf = static_cast<const BTreeIndex::LeafNode*>(leaf_);
  ++pos_;
  while (leaf != nullptr && pos_ >= leaf->base.count) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BTreeIndex::Iterator BTreeIndex::LowerBound(const IndexKey& key) const {
  Iterator it;
  const LeafNode* leaf = FindLeaf(key);
  int pos = LowerBoundIn(leaf->keys, leaf->base.count, key);
  while (leaf != nullptr && pos >= leaf->base.count) {
    leaf = leaf->next;
    pos = 0;
  }
  it.leaf_ = leaf;
  it.pos_ = pos;
  return it;
}

Status BTreeIndex::CheckInvariants() const {
  // Walk the leaf chain: keys strictly increasing, total matches size_.
  const Node* n = root_;
  while (!n->is_leaf) {
    const auto* in = reinterpret_cast<const InternalNode*>(n);
    if (in->base.count < 2 || in->base.count > kInternalCapacity) {
      return Status::Corruption("btree: internal fanout out of bounds");
    }
    n = in->children[0];
  }
  const auto* leaf = reinterpret_cast<const LeafNode*>(n);
  uint64_t seen = 0;
  const IndexKey* prev = nullptr;
  while (leaf != nullptr) {
    if (leaf->base.count > kLeafCapacity) {
      return Status::Corruption("btree: leaf overflow");
    }
    for (int i = 0; i < leaf->base.count; ++i) {
      if (prev != nullptr && !(prev->Compare(leaf->keys[i]) < 0)) {
        return Status::Corruption("btree: leaf chain out of order");
      }
      prev = &leaf->keys[i];
      ++seen;
    }
    leaf = leaf->next;
  }
  if (seen != size_) {
    return Status::Corruption("btree: size mismatch");
  }
  return Status::OK();
}

}  // namespace microspec
