#ifndef MICROSPEC_INDEX_BTREE_H_
#define MICROSPEC_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/page.h"

namespace microspec {

/// Composite integer index key of up to four parts, compared
/// lexicographically. TPC-C's primary keys ((w_id), (w_id,d_id),
/// (w_id,d_id,o_id), ...) all fit this shape.
struct IndexKey {
  int64_t part[4] = {0, 0, 0, 0};
  uint8_t nparts = 0;

  static IndexKey Of(std::initializer_list<int64_t> parts) {
    IndexKey k;
    for (int64_t p : parts) {
      MICROSPEC_CHECK(k.nparts < 4);
      k.part[k.nparts++] = p;
    }
    return k;
  }

  /// -1 / 0 / +1 three-way compare over min(nparts) leading parts, then by
  /// nparts (so a shorter key sorts before all longer keys sharing its
  /// prefix — which makes prefix range scans natural).
  int Compare(const IndexKey& other) const {
    uint8_t n = nparts < other.nparts ? nparts : other.nparts;
    for (uint8_t i = 0; i < n; ++i) {
      if (part[i] < other.part[i]) return -1;
      if (part[i] > other.part[i]) return 1;
    }
    if (nparts < other.nparts) return -1;
    if (nparts > other.nparts) return 1;
    return 0;
  }

  /// True if this key's leading parts equal `prefix` entirely.
  bool HasPrefix(const IndexKey& prefix) const {
    if (prefix.nparts > nparts) return false;
    for (uint8_t i = 0; i < prefix.nparts; ++i) {
      if (part[i] != prefix.part[i]) return false;
    }
    return true;
  }

  bool operator==(const IndexKey& o) const { return Compare(o) == 0; }
  bool operator<(const IndexKey& o) const { return Compare(o) < 0; }
};

/// An in-memory B+tree with unique keys mapping IndexKey -> TupleId.
/// Leaves are chained for range scans. Deletion is by tombstone-free removal
/// from the leaf without rebalancing (underfull leaves are tolerated), which
/// is sufficient for the TPC-C access pattern and keeps the structure simple.
class BTreeIndex {
 public:
  BTreeIndex();
  ~BTreeIndex();
  MICROSPEC_DISALLOW_COPY_AND_MOVE(BTreeIndex);

  /// Inserts key -> tid. Returns AlreadyExists if the key is present.
  Status Insert(const IndexKey& key, TupleId tid);

  /// Removes the key. Returns NotFound if absent.
  Status Remove(const IndexKey& key);

  /// Point lookup; returns true and sets *tid when found.
  bool Lookup(const IndexKey& key, TupleId* tid) const;

  /// Updates the TupleId stored for an existing key.
  Status UpdateTid(const IndexKey& key, TupleId tid);

  uint64_t size() const { return size_; }

  /// Forward iterator positioned by LowerBound.
  class Iterator {
   public:
    bool valid() const { return leaf_ != nullptr; }
    const IndexKey& key() const;
    TupleId tid() const;
    void Next();

   private:
    friend class BTreeIndex;
    const void* leaf_ = nullptr;
    int pos_ = 0;
  };

  /// Positions at the first entry with key >= `key`.
  Iterator LowerBound(const IndexKey& key) const;

  /// Scans all entries whose key begins with `prefix`, in key order,
  /// invoking fn(key, tid); stops early if fn returns false.
  template <typename Fn>
  void ScanPrefix(const IndexKey& prefix, Fn&& fn) const {
    for (Iterator it = LowerBound(prefix); it.valid(); it.Next()) {
      if (!it.key().HasPrefix(prefix)) break;
      if (!fn(it.key(), it.tid())) break;
    }
  }

  /// Validates B+tree invariants (ordering, fanout bounds, leaf chaining).
  /// Used by tests; returns a Corruption status describing the first
  /// violation found.
  Status CheckInvariants() const;

  // Node types are implementation details defined in btree.cc; they are
  // declared public only so file-local helpers there can name them.
  struct Node;
  struct LeafNode;
  struct InternalNode;

 private:
  Node* root_;
  uint64_t size_ = 0;

  LeafNode* FindLeaf(const IndexKey& key) const;
  void FreeNode(Node* n);
};

}  // namespace microspec

#endif  // MICROSPEC_INDEX_BTREE_H_
