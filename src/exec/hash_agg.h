#ifndef MICROSPEC_EXEC_HASH_AGG_H_
#define MICROSPEC_EXEC_HASH_AGG_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace microspec {

enum class AggKind : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// One aggregate computation: kind + argument expression (nullptr for
/// COUNT(*)).
struct AggSpec {
  AggKind kind;
  ExprPtr arg;

  static AggSpec CountStar() { return AggSpec{AggKind::kCountStar, nullptr}; }
  static AggSpec Count(ExprPtr e) { return AggSpec{AggKind::kCount, std::move(e)}; }
  static AggSpec Sum(ExprPtr e) { return AggSpec{AggKind::kSum, std::move(e)}; }
  static AggSpec Avg(ExprPtr e) { return AggSpec{AggKind::kAvg, std::move(e)}; }
  static AggSpec Min(ExprPtr e) { return AggSpec{AggKind::kMin, std::move(e)}; }
  static AggSpec Max(ExprPtr e) { return AggSpec{AggKind::kMax, std::move(e)}; }
};

/// Hash aggregation with optional GROUP BY. The per-row update loop
/// dispatches on the aggregate kind and argument type at run time — the
/// paper explicitly identifies aggregation as a not-yet-specialized cost
/// center explaining the lower gains of q1/q18 (Section VI-A); the optional
/// aggregation bee (SessionOptions::enable_agg_bee, our extension of the
/// paper's future work) replaces the dispatch with monomorphized updaters.
///
/// Output: group columns ++ one column per AggSpec.
class HashAggregate final : public Operator {
 public:
  HashAggregate(ExecContext* ctx, OperatorPtr child,
                std::vector<int> group_cols, std::vector<AggSpec> aggs);

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

  /// --- Parallel-merge hooks (used by ParallelHashAggregate) ----------------
  /// Runs Init + the accumulation phase without emitting, leaving this
  /// aggregate ready to be merged or drained. Called on a worker thread.
  Status PartialAccumulate();
  /// Folds `src`'s groups into this aggregate: counts and sums add, MIN/MAX
  /// compare, and group keys / extreme values are deep-copied into this
  /// aggregate's arena (the source is closed after the merge). Both sides
  /// must share group columns and aggregate specs.
  void MergeFrom(HashAggregate* src);

  /// Accumulator state; public so the aggregation-bee kernels (file-local
  /// free functions in hash_agg.cc) can operate on it.
  struct AggState {
    double fsum = 0;
    int64_t isum = 0;
    int64_t count = 0;
    Datum extreme = 0;  // MIN/MAX current value
    bool has_value = false;
  };
 private:
  struct Group {
    uint64_t hash;
    Group* next;
    Datum* keys;
    bool* keynull;
    AggState* states;
  };

  Status Accumulate();
  void UpdateGeneric(Group* g, const ExecRow& row);
  void EmitGroup(const Group* g);

  /// --- Aggregation bee (extension of the paper's §VIII future work) ---------
  /// When SessionOptions::enable_agg_bee is set, aggregates whose argument
  /// is a bare column get a monomorphized update kernel selected at Init
  /// (kind x type burned in, the attribute number patched into the kernel
  /// context) instead of the interpreted argument + double dispatch.
  using AggKernelFn = void (*)(AggState&, const Datum*, const bool*,
                               int attno);
  struct AggKernel {
    AggKernelFn fn = nullptr;  // nullptr -> generic update for this spec
    int attno = 0;
  };
  void BuildAggKernels();
  void UpdateWithKernels(Group* g, const ExecRow& row);

  /// --- Batch accumulation ---------------------------------------------------
  /// When the context enables batching and the child subtree is batch
  /// capable, Accumulate() drains the child through NextBatch instead of
  /// per-row Next. Group keys hash/compare straight out of the batch's
  /// column arrays; aggregate arguments that are bare outer columns update
  /// through value-form kernels reading one column cell (no row is ever
  /// gathered), and anything else falls back to gathering the row and
  /// reusing the scalar update path. This is independent of the agg bee:
  /// the value kernels are an execution-layout detail, the bee switch only
  /// changes the modeled per-aggregate work cost.
  using AggColKernelFn = void (*)(AggState&, Datum v, bool isnull);
  struct AggColKernel {
    AggColKernelFn fn = nullptr;  // nullptr -> this spec needs the full row
    int attno = -1;               // -1: kernel reads no column (COUNT(*))
  };
  void BuildColKernels();
  Status AccumulateBatch();
  void SynthesizeEmptyGlobalGroup();

  std::vector<AggColKernel> col_kernels_;
  bool batch_all_kernels_ = false;
  std::unique_ptr<RowBatch> batch_;
  std::vector<Datum> crow_values_;
  std::unique_ptr<bool[]> crow_isnull_;

  std::vector<AggKernel> kernels_;
  bool use_kernels_ = false;

  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  std::vector<ColMeta> group_meta_;
  std::vector<ColMeta> agg_arg_meta_;

  Arena arena_;
  std::vector<Group*> buckets_;
  uint64_t bucket_mask_ = 0;
  std::vector<Group*> groups_;  // emission order
  size_t emit_pos_ = 0;
  bool accumulated_ = false;

  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_HASH_AGG_H_
