#include "exec/operator.h"

namespace microspec {

Result<uint64_t> CountRows(Operator* op) {
  MICROSPEC_RETURN_NOT_OK(op->Init());
  uint64_t n = 0;
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    ++n;
  }
  op->Close();
  return n;
}

}  // namespace microspec
