#include "exec/operator.h"

namespace microspec {

Status ScalarNextIntoBatch(Operator* op, RowBatch* batch) {
  batch->Reset();
  const std::vector<ColMeta>& meta = op->output_meta();
  const int ncols = batch->ncols();
  const int cap = batch->capacity();
  int n = 0;
  bool has_row = false;
  while (n < cap) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    const Datum* v = op->values();
    const bool* nu = op->isnull();
    for (int c = 0; c < ncols; ++c) {
      const bool null = nu[c];
      batch->nulls(c)[n] = null;
      batch->col(c)[n] =
          null ? 0
               : CopyDatum(batch->arena(), v[c], meta[static_cast<size_t>(c)]);
    }
    ++n;
  }
  batch->SetAllSelected(n);
  return Status::OK();
}

Result<uint64_t> CountRows(Operator* op) {
  MICROSPEC_RETURN_NOT_OK(op->Init());
  uint64_t n = 0;
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    ++n;
  }
  op->Close();
  return n;
}

}  // namespace microspec
