#include "exec/operator.h"

#include "common/telemetry.h"
#include "exec/shared_bees.h"

namespace microspec {

namespace {

/// Records the duration of a specialization call on a traced query as a
/// forge-wait span: the statement blocked on forging/verifying a bee (or on
/// another session's in-flight forge via the shared cache). Zero cost for
/// untraced queries beyond the null test.
void RecordForgeWait(const trace::TraceContext& tc, uint64_t start_ns,
                     const char* what) {
  tc.trace->AddComplete(tc.parent, trace::SpanKind::kWait, what, start_ns,
                        telemetry::NowNs(), trace::WaitKind::kForge);
}

}  // namespace

std::unique_ptr<PredicateEvaluator> ExecContext::MakePredicate(
    ExprPtr expr, const std::vector<ColMeta>* input_meta) {
  const bool traced = trace_.trace != nullptr && bees_ != nullptr;
  const uint64_t t0 = traced ? telemetry::NowNs() : 0;
  std::unique_ptr<PredicateEvaluator> result =
      MakePredicateImpl(std::move(expr), input_meta);
  if (MICROSPEC_UNLIKELY(traced)) {
    RecordForgeWait(trace_, t0, "forge-wait(evp)");
  }
  return result;
}

std::unique_ptr<PredicateEvaluator> ExecContext::MakePredicateImpl(
    ExprPtr expr, const std::vector<ColMeta>* input_meta) {
  if (bees_ != nullptr) {
    if (shared_bees_ != nullptr && opts_.enable_evp) {
      std::shared_ptr<PredicateEvaluator> shared =
          shared_bees_->GetOrBuildPredicate(
              ExprFingerprint(*expr, input_meta), [&] {
                return bees_->SpecializePredicate(*expr, opts_, input_meta);
              });
      if (shared != nullptr) {
        return std::make_unique<SharedPredicate>(std::move(shared));
      }
      // Cached as not specializable: fall through to the interpreter
      // without re-running the specializer/verifier.
    } else {
      std::unique_ptr<PredicateEvaluator> bee =
          bees_->SpecializePredicate(*expr, opts_, input_meta);
      if (bee != nullptr) return bee;
    }
  }
  return std::make_unique<ExprPredicate>(std::move(expr));
}

std::unique_ptr<JoinKeyEvaluator> ExecContext::MakeJoinKeys(
    std::vector<int> outer_cols, std::vector<int> inner_cols,
    std::vector<ColMeta> key_meta, int outer_width, int inner_width) {
  const bool traced = trace_.trace != nullptr && bees_ != nullptr;
  const uint64_t t0 = traced ? telemetry::NowNs() : 0;
  std::unique_ptr<JoinKeyEvaluator> result =
      MakeJoinKeysImpl(std::move(outer_cols), std::move(inner_cols),
                       std::move(key_meta), outer_width, inner_width);
  if (MICROSPEC_UNLIKELY(traced)) {
    RecordForgeWait(trace_, t0, "forge-wait(evj)");
  }
  return result;
}

std::unique_ptr<JoinKeyEvaluator> ExecContext::MakeJoinKeysImpl(
    std::vector<int> outer_cols, std::vector<int> inner_cols,
    std::vector<ColMeta> key_meta, int outer_width, int inner_width) {
  if (bees_ != nullptr) {
    if (shared_bees_ != nullptr && opts_.enable_evj) {
      std::shared_ptr<JoinKeyEvaluator> shared =
          shared_bees_->GetOrBuildJoinKeys(
              JoinKeysFingerprint(outer_cols, inner_cols, key_meta,
                                  outer_width, inner_width),
              [&] {
                return bees_->SpecializeJoinKeys(outer_cols, inner_cols,
                                                 key_meta, opts_, outer_width,
                                                 inner_width);
              });
      if (shared != nullptr) {
        return std::make_unique<SharedJoinKeys>(std::move(shared));
      }
    } else {
      std::unique_ptr<JoinKeyEvaluator> bee =
          bees_->SpecializeJoinKeys(outer_cols, inner_cols, key_meta, opts_,
                                    outer_width, inner_width);
      if (bee != nullptr) return bee;
    }
  }
  return std::make_unique<GenericJoinKeys>(
      std::move(outer_cols), std::move(inner_cols), std::move(key_meta));
}

Status ScalarNextIntoBatch(Operator* op, RowBatch* batch) {
  batch->Reset();
  const std::vector<ColMeta>& meta = op->output_meta();
  const int ncols = batch->ncols();
  const int cap = batch->capacity();
  int n = 0;
  bool has_row = false;
  while (n < cap) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    const Datum* v = op->values();
    const bool* nu = op->isnull();
    for (int c = 0; c < ncols; ++c) {
      const bool null = nu[c];
      batch->nulls(c)[n] = null;
      batch->col(c)[n] =
          null ? 0
               : CopyDatum(batch->arena(), v[c], meta[static_cast<size_t>(c)]);
    }
    ++n;
  }
  batch->SetAllSelected(n);
  return Status::OK();
}

Result<uint64_t> CountRows(Operator* op) {
  MICROSPEC_RETURN_NOT_OK(op->Init());
  uint64_t n = 0;
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    ++n;
  }
  op->Close();
  return n;
}

}  // namespace microspec
