#ifndef MICROSPEC_EXEC_STATS_FEEDBACK_H_
#define MICROSPEC_EXEC_STATS_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/macros.h"
#include "exec/row.h"

namespace microspec {

namespace telemetry {
struct TelemetrySnapshot;
}  // namespace telemetry

class Expr;
class RowBatch;

/// --- Workload statistics feedback -------------------------------------------
/// The cost-based-optimizer open item (ROADMAP.md) needs two signals nothing
/// collects today: per-relation/per-column statistics (min/max/ndv) and
/// *observed* selectivity per specialized predicate — rows-in vs rows-out for
/// each EVP/EVJ fingerprint the QueryBeeCache knows. This module gathers both
/// as a side effect of execution: scans feed column sketches, Filter and
/// HashJoin feed selectivity keyed by the PR 7 fingerprints. Everything is
/// opt-in via DatabaseOptions::stats_feedback; when off, ExecContext carries
/// a null pointer and operators skip collection entirely (the per-row hashing
/// the sketches do is real work, so it is never on by default).

/// A compact SQL-ish rendering of a predicate tree, used as the `expr=`
/// label on selectivity samples (the fingerprint itself is exact but
/// unreadable). Bounded length; never fails.
std::string DescribeExpr(const Expr& expr);

/// Per-column sketch: exact min/max over numeric/date values plus a
/// HyperLogLog distinct-count estimator (256 registers → ~6.5% standard
/// error). Not thread-safe; collectors are per-scan and merged under the
/// StatsFeedback mutex.
class ColumnSketch {
 public:
  void Observe(Datum d, bool isnull, const ColMeta& meta);
  void Merge(const ColumnSketch& other);

  uint64_t rows() const { return rows_; }
  uint64_t nulls() const { return nulls_; }
  /// Estimated number of distinct non-null values.
  double EstimateNdv() const;
  bool has_range() const { return has_range_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  static constexpr int kRegisterBits = 8;
  static constexpr int kRegisters = 1 << kRegisterBits;

  uint8_t regs_[kRegisters] = {0};
  uint64_t rows_ = 0;
  uint64_t nulls_ = 0;
  bool has_range_ = false;
  double min_ = 0;
  double max_ = 0;
};

/// Per-scan collector: one sketch per fetched column, flushed into the
/// shared StatsFeedback on Operator::Close. Created only when the context
/// carries a StatsFeedback, so the per-row cost is opt-in.
class ScanStatsCollector {
 public:
  ScanStatsCollector(std::string relation, std::vector<std::string> columns,
                     std::vector<ColMeta> metas);

  void ObserveRow(const Datum* values, const bool* isnull);
  /// Observes every materialized row of the batch (scans materialize whole
  /// pages; the selection vector is still the identity at this point).
  void ObserveBatch(const RowBatch& batch);

  const std::string& relation() const { return relation_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<ColumnSketch>& sketches() const { return sketches_; }
  uint64_t rows() const { return rows_; }

 private:
  std::string relation_;
  std::vector<std::string> columns_;
  std::vector<ColMeta> metas_;
  std::vector<ColumnSketch> sketches_;
  uint64_t rows_ = 0;
};

/// The shared, thread-safe accumulation point, owned by Database. Parallel
/// scan fragments and filters flush into it on Close; SnapshotTelemetry()
/// merges it into the snapshot, which is how the numbers reach /metrics and
/// the BENCH_*.json telemetry sections.
class StatsFeedback {
 public:
  struct PredicateStats {
    std::string display;  // DescribeExpr rendering
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
  };
  struct JoinStats {
    std::string display;  // join key fingerprint, readable form
    uint64_t probe_rows = 0;
    uint64_t matches = 0;
  };
  struct RelationStats {
    uint64_t rows = 0;  // rows observed across scans (not distinct tuples)
    std::vector<std::string> columns;
    std::vector<ColumnSketch> sketches;
  };

  StatsFeedback() = default;
  MICROSPEC_DISALLOW_COPY_AND_MOVE(StatsFeedback);

  /// Accumulates rows-in/rows-out for the EVP fingerprint `fingerprint`
  /// (the exact QueryBeeCache key string).
  void RecordPredicate(const std::string& fingerprint,
                       const std::string& display, uint64_t rows_in,
                       uint64_t rows_out);
  /// Accumulates probe-side rows vs emitted matches for an EVJ fingerprint.
  void RecordJoin(const std::string& fingerprint, const std::string& display,
                  uint64_t probe_rows, uint64_t matches);
  /// Merges a finished scan's column sketches.
  void MergeScan(const ScanStatsCollector& collector);

  /// Appends every statistic as labeled samples:
  ///   microspec_predicate_rows_in_total{fp=,expr=,kind="evp"}
  ///   microspec_predicate_rows_out_total{...} + _selectivity gauge
  ///   microspec_join_probe_rows_total / _match_rows_total{fp=,kind="evj"}
  ///     + microspec_join_selectivity gauge
  ///   microspec_scan_rows_total{relation=}
  ///   microspec_column_ndv / _min / _max{relation=,column=}
  void FillSnapshot(telemetry::TelemetrySnapshot* snap) const;

  std::map<std::string, PredicateStats> predicates() const;
  std::map<std::string, JoinStats> joins() const;
  std::map<std::string, RelationStats> relations() const;

  void Reset();

  /// 16-hex-digit label form of a fingerprint string (Hash64 of the exact
  /// cache key) — what the `fp=` label carries.
  static std::string FingerprintLabel(const std::string& fingerprint);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PredicateStats> predicates_;
  std::map<std::string, JoinStats> joins_;
  std::map<std::string, RelationStats> relations_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_STATS_FEEDBACK_H_
