#ifndef MICROSPEC_EXEC_MORSEL_H_
#define MICROSPEC_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>

#include "common/macros.h"
#include "storage/page.h"

namespace microspec {

/// Default morsel size, in heap pages. Small enough that workers rebalance
/// on skew (a LIMIT or a selective filter finishing one worker early), large
/// enough that the shared-cursor fetch_add is invisible next to the per-page
/// pin and per-tuple deform work.
inline constexpr uint32_t kDefaultMorselPages = 16;

/// The shared work queue of a morsel-driven scan: a single atomic page
/// cursor over [0, num_pages). Each worker claims the next fixed-size page
/// range with one fetch_add and scans it to completion before claiming
/// again, so pages are partitioned exactly — every tuple is produced by
/// exactly one worker regardless of scheduling.
///
/// Claim() is relaxed: the cursor orders nothing but itself. Page contents
/// are published to workers by the buffer pool's internal lock, and bee
/// routine pointers by RelationBeeState's release-store/acquire-load pair
/// (see DESIGN.md "Parallel execution").
class MorselCursor {
 public:
  /// Snapshots the relation size at plan-build time; rows appended while
  /// the query runs are not part of the scan (same snapshot the serial
  /// executor would have seen at its first page-boundary check).
  MorselCursor(PageNo num_pages, uint32_t morsel_pages)
      : num_pages_(num_pages),
        morsel_pages_(morsel_pages == 0 ? kDefaultMorselPages : morsel_pages) {}
  MICROSPEC_DISALLOW_COPY_AND_MOVE(MorselCursor);

  /// Claims the next morsel as [*begin, *end). Returns false when the
  /// relation is exhausted.
  bool Claim(PageNo* begin, PageNo* end) {
    uint64_t b = next_.fetch_add(morsel_pages_, std::memory_order_relaxed);
    if (b >= num_pages_) return false;
    *begin = static_cast<PageNo>(b);
    *end = static_cast<PageNo>(
        std::min<uint64_t>(b + morsel_pages_, num_pages_));
    return true;
  }

  /// Rewinds for a rescan (Gather re-Init). Callers must guarantee no
  /// worker is concurrently claiming — Gather stops its workers first.
  void Reset() { next_.store(0, std::memory_order_relaxed); }

  PageNo num_pages() const { return num_pages_; }
  uint32_t morsel_pages() const { return morsel_pages_; }

 private:
  std::atomic<uint64_t> next_{0};
  PageNo num_pages_;
  uint32_t morsel_pages_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_MORSEL_H_
