#ifndef MICROSPEC_EXEC_NESTED_LOOP_JOIN_H_
#define MICROSPEC_EXEC_NESTED_LOOP_JOIN_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace microspec {

/// Nested-loop join for non-equi join conditions. Materializes the inner
/// child once, then evaluates the join predicate for every outer x inner
/// pair. Supports kInner/kLeft/kSemi/kAnti with the same output layout rules
/// as HashJoin. The predicate is the FuncExprState-style generic tree; EVP
/// can specialize it when its shape qualifies.
class NestedLoopJoin final : public Operator {
 public:
  NestedLoopJoin(ExecContext* ctx, OperatorPtr outer, OperatorPtr inner,
                 JoinType join_type, ExprPtr predicate);

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  struct MatRow {
    Datum* values;
    bool* isnull;
  };

  void EmitCombined(const MatRow* inner_row);

  ExecContext* ctx_;
  OperatorPtr outer_;
  OperatorPtr inner_;
  JoinType join_type_;
  ExprPtr pred_expr_;
  std::unique_ptr<PredicateEvaluator> pred_;

  Arena arena_;
  std::vector<MatRow> inner_rows_;
  size_t inner_pos_ = 0;
  bool outer_valid_ = false;
  bool outer_matched_ = false;

  size_t outer_width_ = 0;
  size_t inner_width_ = 0;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_NESTED_LOOP_JOIN_H_
