#ifndef MICROSPEC_EXEC_SEQ_SCAN_H_
#define MICROSPEC_EXEC_SEQ_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/operator.h"
#include "storage/heap_file.h"

namespace microspec {

/// Full scan of a relation. Every produced tuple goes through the session's
/// TupleDeformer — the stock per-attribute loop, or the relation bee's GCL
/// routine when micro-specialization is enabled. This is the operator whose
/// inner loop the paper's case study (Section II) measures.
class SeqScan final : public Operator {
 public:
  /// `natts_to_fetch` < 0 means all attributes; a smaller count enables the
  /// partial-deform early-out both the stock loop and GCL support.
  SeqScan(ExecContext* ctx, TableInfo* table, int natts_to_fetch = -1);

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  ExecContext* ctx_;
  TableInfo* table_;
  int natts_;
  const TupleDeformer* deformer_ = nullptr;
  std::optional<HeapFile::Iterator> iter_;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_SEQ_SCAN_H_
