#ifndef MICROSPEC_EXEC_SEQ_SCAN_H_
#define MICROSPEC_EXEC_SEQ_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/morsel.h"
#include "exec/operator.h"
#include "storage/heap_file.h"

namespace microspec {

class ScanStatsCollector;

/// Full scan of a relation. Every produced tuple goes through the session's
/// TupleDeformer — the stock per-attribute loop, or the relation bee's GCL
/// routine when micro-specialization is enabled. This is the operator whose
/// inner loop the paper's case study (Section II) measures.
class SeqScan final : public Operator {
 public:
  /// `natts_to_fetch` < 0 means all attributes; a smaller count enables the
  /// partial-deform early-out both the stock loop and GCL support.
  SeqScan(ExecContext* ctx, TableInfo* table, int natts_to_fetch = -1);

  Status Init() override;
  Status Next(bool* has_row) override;
  /// Page-granular batch: all live tuples of the next heap page, deformed
  /// in one GCL-B call, with the page pinned by the batch.
  Status NextBatch(RowBatch* batch) override;
  bool BatchCapable() const override { return true; }
  void Close() override;

 private:
  ExecContext* ctx_;
  TableInfo* table_;
  int natts_;
  const TupleDeformer* deformer_ = nullptr;
  std::optional<HeapFile::Iterator> iter_;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
  std::vector<const char*> tuple_buf_;
  /// Column min/max/ndv sketches; non-null only under stats feedback.
  std::unique_ptr<ScanStatsCollector> stats_;
};

/// One worker's slice of a morsel-driven parallel scan. dop instances share
/// a MorselCursor; each claims fixed-size page ranges and scans them with
/// the bounded heap iterator, so together they produce every tuple exactly
/// once. The deform path is identical to SeqScan — each instance resolves
/// its deformer through its *worker* ExecContext, which keeps GCL bee
/// invocation (and the program→native tier switch via the bee state's
/// acquire load) on the worker thread.
class ParallelScan final : public Operator {
 public:
  ParallelScan(ExecContext* ctx, TableInfo* table,
               std::shared_ptr<MorselCursor> cursor, int natts_to_fetch = -1);

  Status Init() override;
  Status Next(bool* has_row) override;
  /// Page-granular batch within the claimed morsel; claims stay page-
  /// granular, so dop composes with batching unchanged.
  Status NextBatch(RowBatch* batch) override;
  bool BatchCapable() const override { return true; }
  void Close() override;

 private:
  ExecContext* ctx_;
  TableInfo* table_;
  std::shared_ptr<MorselCursor> cursor_;
  int natts_;
  const TupleDeformer* deformer_ = nullptr;
  std::optional<HeapFile::Iterator> iter_;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
  std::vector<const char*> tuple_buf_;
  /// Column min/max/ndv sketches; non-null only under stats feedback.
  std::unique_ptr<ScanStatsCollector> stats_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_SEQ_SCAN_H_
