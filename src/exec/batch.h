#ifndef MICROSPEC_EXEC_BATCH_H_
#define MICROSPEC_EXEC_BATCH_H_

#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/datum.h"
#include "common/macros.h"
#include "exec/row.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace microspec {

/// Upper bound on live tuples in one slotted page, and therefore on the
/// batch size a page-granular scan can ever fill: each tuple costs at least
/// a 4-byte slot entry plus 8 bytes of kMaxAlign-aligned tuple data out of
/// the bytes left after the page header.
inline constexpr int kMaxTuplesPerPage =
    static_cast<int>((kPageSize - kPageHeaderSize) / (4 + 8));  // 680

/// A batch of rows in column-major layout: per-column Datum/null arrays of
/// `capacity` entries plus a selection vector listing the live row indices
/// in increasing order. Operators producing batches fill rows [0, size())
/// and select all of them; filters narrow the selection vector in place
/// without moving any data (DESIGN.md "Batch execution").
///
/// Lifetime of by-reference Datums: a scan-produced batch holds its heap
/// page pinned via pin(), so pointer Datums into the page stay valid until
/// the next Reset()/refill — including across threads when a Gather hands
/// the whole batch to its consumer. Rows accumulated through the scalar
/// adapter instead deep-copy by-reference values into arena().
class RowBatch {
 public:
  RowBatch(int ncols, int capacity)
      : ncols_(ncols < 0 ? 0 : ncols),
        capacity_(capacity < 1 ? 1 : capacity) {
    const size_t cells =
        static_cast<size_t>(ncols_) * static_cast<size_t>(capacity_);
    values_.assign(cells, 0);
    nulls_ = std::make_unique<bool[]>(cells);
    sel_.assign(static_cast<size_t>(capacity_), 0);
    col_ptrs_.reserve(static_cast<size_t>(ncols_));
    null_ptrs_.reserve(static_cast<size_t>(ncols_));
    for (int c = 0; c < ncols_; ++c) {
      col_ptrs_.push_back(values_.data() +
                          static_cast<size_t>(c) * capacity_);
      null_ptrs_.push_back(nulls_.get() + static_cast<size_t>(c) * capacity_);
    }
  }
  MICROSPEC_DISALLOW_COPY_AND_MOVE(RowBatch);

  int ncols() const { return ncols_; }
  int capacity() const { return capacity_; }
  /// Rows materialized in the column arrays (dense prefix [0, size())).
  int size() const { return nrows_; }
  /// Rows surviving the selection vector; 0 also signals end-of-stream.
  int selected() const { return nsel_; }

  Datum* col(int c) { return col_ptrs_[static_cast<size_t>(c)]; }
  const Datum* col(int c) const { return col_ptrs_[static_cast<size_t>(c)]; }
  bool* nulls(int c) { return null_ptrs_[static_cast<size_t>(c)]; }
  const bool* nulls(int c) const {
    return null_ptrs_[static_cast<size_t>(c)];
  }
  /// Per-column base pointers — the shape batch bee entry points take.
  Datum* const* cols() { return col_ptrs_.data(); }
  bool* const* null_cols() { return null_ptrs_.data(); }

  int* sel() { return sel_.data(); }
  const int* sel() const { return sel_.data(); }

  /// Marks rows [0, n) materialized with the identity selection.
  void SetAllSelected(int n) {
    nrows_ = n;
    nsel_ = n;
    for (int i = 0; i < n; ++i) sel_[static_cast<size_t>(i)] = i;
  }
  /// Shrinks the selection count after in-place compaction of sel().
  void SetSelected(int n) { nsel_ = n; }

  /// Scratch space for by-reference values owned by this batch (scalar
  /// adapter copies, projection results).
  Arena* arena() { return &arena_; }
  /// The pinned heap page backing pointer Datums of a scan-filled batch.
  /// Assigning a new guard releases the previous pin.
  PageGuard* pin() { return &pin_; }

  /// Empties the batch: drops the selection, releases the page pin and the
  /// arena. Column arrays keep their storage (no reallocation per refill).
  void Reset() {
    nrows_ = 0;
    nsel_ = 0;
    pin_ = PageGuard();
    arena_.Reset();
  }

  /// Copies row `r`'s cells into row-major `values`/`isnull` arrays — the
  /// bridge to per-row consumers (expression evaluation, scalar parents).
  void GatherRow(int r, Datum* values, bool* isnull) const {
    for (int c = 0; c < ncols_; ++c) {
      values[c] = col_ptrs_[static_cast<size_t>(c)][r];
      isnull[c] = null_ptrs_[static_cast<size_t>(c)][r];
    }
  }

 private:
  int ncols_;
  int capacity_;
  int nrows_ = 0;
  int nsel_ = 0;
  std::vector<Datum> values_;  // column-major: values_[c * capacity_ + r]
  std::unique_ptr<bool[]> nulls_;
  std::vector<Datum*> col_ptrs_;
  std::vector<bool*> null_ptrs_;
  std::vector<int> sel_;
  Arena arena_;
  PageGuard pin_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_BATCH_H_
