#ifndef MICROSPEC_EXEC_ACCESS_H_
#define MICROSPEC_EXEC_ACCESS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/datum.h"
#include "exec/row.h"
#include "expr/expr.h"
#include "storage/tuple.h"

namespace microspec {

/// --- The seams where bee routines replace generic code ---------------------
/// Each interface below has a "stock" implementation (the generic PostgreSQL-
/// like code path) and, when micro-specialization is enabled, a bee-provided
/// implementation. This is the engine-side half of the paper's Bee Caller:
/// the executor calls through these interfaces without knowing whether the
/// callee is generic code or a bee routine.

/// Extracts attribute values from a stored tuple (slot_deform_tuple's role).
/// A relation bee's GCL routine implements this with straight-line
/// specialized code; StockDeformer implements it with the generic loop.
class TupleDeformer {
 public:
  virtual ~TupleDeformer() = default;

  /// Extracts the first `natts` attributes of `tuple`. Pointer Datums point
  /// into `tuple` or into bee data sections; valid while both stay alive.
  virtual void Deform(const char* tuple, int natts, Datum* values,
                      bool* isnull) const = 0;

  /// Deforms a batch of same-relation tuples (typically all live tuples of
  /// one pinned page) into column-major arrays: cols[a][t] / nulls[a][t] is
  /// attribute a of tuples[t]. The default scatters the per-row Deform
  /// through a per-call scratch row; the GCL-B relation bee overrides it
  /// with a single per-page loop (program or native tier).
  virtual void DeformBatch(const char* const* tuples, int ntuples, int natts,
                           Datum* const* cols, bool* const* nulls) const {
    std::vector<Datum> values(static_cast<size_t>(natts));
    std::unique_ptr<bool[]> isnull(new bool[static_cast<size_t>(natts)]);
    for (int t = 0; t < ntuples; ++t) {
      Deform(tuples[t], natts, values.data(), isnull.get());
      for (int a = 0; a < natts; ++a) {
        cols[a][t] = values[static_cast<size_t>(a)];
        nulls[a][t] = isnull[a];
      }
    }
  }
};

/// The generic deform loop over the relation's logical schema.
class StockDeformer final : public TupleDeformer {
 public:
  explicit StockDeformer(const Schema* schema) : schema_(schema) {}
  void Deform(const char* tuple, int natts, Datum* values,
              bool* isnull) const override {
    tupleops::DeformTuple(*schema_, tuple, natts, values, isnull);
  }

 private:
  const Schema* schema_;
};

/// Builds the stored form of a tuple (heap_fill_tuple's role). The SCL bee
/// routine implements this with specialized code, and — when tuple bees are
/// enabled — also performs tuple-bee creation/dedup, storing specialized
/// attribute values in bee data sections instead of in the tuple.
class TupleFormer {
 public:
  virtual ~TupleFormer() = default;

  /// Serializes logical `values`/`isnull` into `out` (resized to fit).
  /// Fails with ResourceExhausted when tuple-bee creation would exceed the
  /// 256-sections-per-relation cap (the annotation contract was violated).
  virtual Status FormTuple(const Datum* values, const bool* isnull,
                           std::string* out) const = 0;
};

/// The generic form loop over the relation's logical schema.
class StockFormer final : public TupleFormer {
 public:
  explicit StockFormer(const Schema* schema) : schema_(schema) {}
  Status FormTuple(const Datum* values, const bool* isnull,
                   std::string* out) const override {
    uint32_t size = tupleops::ComputeTupleSize(*schema_, values, isnull);
    out->resize(size);
    tupleops::FormTuple(*schema_, values, isnull, out->data());
    return Status::OK();
  }

 private:
  const Schema* schema_;
};

/// Decides whether a row satisfies a predicate (ExecQual's role). The EVP
/// query bee implements this with a monomorphized comparison kernel.
class PredicateEvaluator {
 public:
  virtual ~PredicateEvaluator() = default;
  virtual bool Matches(const ExecRow& row) const = 0;

  /// Batch variant: compacts sel[0..nsel) in place to the row indices (into
  /// column-major cols/nulls arrays of `ncols` columns) satisfying the
  /// predicate, and returns the new count. The default gathers each selected
  /// row into a scratch row and calls Matches; the EVP-B query bee overrides
  /// it with value-form kernels that write the selection vector directly.
  virtual int MatchBatch(const Datum* const* cols, const bool* const* nulls,
                         int ncols, int* sel, int nsel) const {
    std::vector<Datum> values(static_cast<size_t>(ncols));
    std::unique_ptr<bool[]> isnull(new bool[static_cast<size_t>(ncols)]);
    int out = 0;
    for (int i = 0; i < nsel; ++i) {
      const int r = sel[i];
      for (int c = 0; c < ncols; ++c) {
        values[static_cast<size_t>(c)] = cols[c][r];
        isnull[c] = nulls[c][r];
      }
      ExecRow row{values.data(), isnull.get(), nullptr, nullptr};
      if (Matches(row)) sel[out++] = r;
    }
    return out;
  }
};

/// Generic interpreted predicate: walks the expression tree per row.
class ExprPredicate final : public PredicateEvaluator {
 public:
  explicit ExprPredicate(ExprPtr expr) : expr_(std::move(expr)) {}
  bool Matches(const ExecRow& row) const override {
    bool isnull = false;
    Datum d = expr_->Eval(row, &isnull);
    return !isnull && DatumToBool(d);
  }
  const Expr* expr() const { return expr_.get(); }

 private:
  ExprPtr expr_;
};

/// Hashes and compares join keys (the per-probe part of ExecHashJoin). The
/// EVJ query bee provides a monomorphized kernel with the attribute numbers
/// and key types burned in.
class JoinKeyEvaluator {
 public:
  virtual ~JoinKeyEvaluator() = default;
  virtual uint64_t HashOuter(const Datum* values,
                             const bool* isnull) const = 0;
  virtual uint64_t HashInner(const Datum* values,
                             const bool* isnull) const = 0;
  virtual bool KeysEqual(const Datum* outer_values, const bool* outer_isnull,
                         const Datum* inner_values,
                         const bool* inner_isnull) const = 0;
};

/// Generic join-key evaluation: loops over key columns consulting runtime
/// type metadata for every hash/compare.
class GenericJoinKeys final : public JoinKeyEvaluator {
 public:
  GenericJoinKeys(std::vector<int> outer_cols, std::vector<int> inner_cols,
                  std::vector<ColMeta> key_meta)
      : outer_cols_(std::move(outer_cols)),
        inner_cols_(std::move(inner_cols)),
        key_meta_(std::move(key_meta)) {}

  uint64_t HashOuter(const Datum* values, const bool* isnull) const override {
    return HashCols(outer_cols_, values, isnull);
  }
  uint64_t HashInner(const Datum* values, const bool* isnull) const override {
    return HashCols(inner_cols_, values, isnull);
  }
  bool KeysEqual(const Datum* outer_values, const bool* outer_isnull,
                 const Datum* inner_values,
                 const bool* inner_isnull) const override {
    for (size_t i = 0; i < outer_cols_.size(); ++i) {
      bool on = outer_isnull != nullptr && outer_isnull[outer_cols_[i]];
      bool in = inner_isnull != nullptr && inner_isnull[inner_cols_[i]];
      workops::Bump(4);  // per-key null checks + metadata load
      if (on || in) return false;  // SQL: NULL keys never join
      if (!DatumEqualsGeneric(outer_values[outer_cols_[i]],
                              inner_values[inner_cols_[i]], key_meta_[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  uint64_t HashCols(const std::vector<int>& cols, const Datum* values,
                    const bool* isnull) const {
    uint64_t h = 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      workops::Bump(3);
      if (isnull != nullptr && isnull[cols[i]]) continue;
      h = DatumHashGeneric(values[cols[i]], key_meta_[i], h);
    }
    return h;
  }

  std::vector<int> outer_cols_;
  std::vector<int> inner_cols_;
  std::vector<ColMeta> key_meta_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_ACCESS_H_
