#include "exec/plan_builder.h"

#include "exec/analyze.h"
#include "exec/filter.h"
#include "exec/project.h"
#include "exec/seq_scan.h"

namespace microspec {

void Plan::Instrument(std::string label, std::vector<int> children) {
  QueryStats* qs = ctx_->analyze();
  if (qs == nullptr) return;
  // Drop placeholders from inputs built before collection was enabled.
  std::erase_if(children, [](int id) { return id < 0; });
  stats_id_ = qs->AddNode(std::move(label), std::move(children));
  op_ = std::make_unique<OpProfiler>(std::move(op_), qs, stats_id_);
}

Plan Plan::Scan(ExecContext* ctx, TableInfo* table, int natts) {
  auto scan = std::make_unique<SeqScan>(ctx, table, natts);
  int n = static_cast<int>(scan->output_meta().size());
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back(table->schema().column(i).name());
  Plan plan(ctx, std::move(scan), std::move(names));
  plan.Instrument("SeqScan(" + table->name() + ")", {});
  return plan;
}

Plan& Plan::Where(ExprPtr predicate) {
  int child = stats_id_;
  op_ = std::make_unique<Filter>(ctx_, std::move(op_), std::move(predicate));
  Instrument("Filter", {child});
  return *this;
}

Plan Plan::Join(Plan outer, Plan inner,
                std::vector<std::pair<std::string, std::string>> keys,
                JoinType type, ExprPtr residual) {
  std::vector<int> outer_keys;
  std::vector<int> inner_keys;
  for (const auto& [ok, ik] : keys) {
    outer_keys.push_back(outer.col(ok));
    inner_keys.push_back(inner.col(ik));
  }
  std::vector<std::string> names = outer.names_;
  if (type == JoinType::kInner || type == JoinType::kLeft) {
    for (const std::string& n : inner.names_) names.push_back(n);
  }
  ExecContext* ctx = outer.ctx_;
  auto join = std::make_unique<HashJoin>(
      ctx, std::move(outer.op_), std::move(inner.op_), std::move(outer_keys),
      std::move(inner_keys), type, std::move(residual));
  Plan plan(ctx, std::move(join), std::move(names));
  plan.Instrument("HashJoin", {outer.stats_id_, inner.stats_id_});
  return plan;
}

Plan Plan::LoopJoin(Plan outer, Plan inner, JoinType type, ExprPtr predicate) {
  std::vector<std::string> names = outer.names_;
  if (type == JoinType::kInner || type == JoinType::kLeft) {
    for (const std::string& n : inner.names_) names.push_back(n);
  }
  ExecContext* ctx = outer.ctx_;
  auto join = std::make_unique<NestedLoopJoin>(
      ctx, std::move(outer.op_), std::move(inner.op_), type,
      std::move(predicate));
  Plan plan(ctx, std::move(join), std::move(names));
  plan.Instrument("NestedLoopJoin", {outer.stats_id_, inner.stats_id_});
  return plan;
}

Plan& Plan::GroupBy(const std::vector<std::string>& group_cols,
                    std::vector<std::pair<AggSpec, std::string>> aggs) {
  std::vector<int> cols;
  std::vector<std::string> names;
  for (const std::string& g : group_cols) {
    cols.push_back(col(g));
    names.push_back(g);
  }
  std::vector<AggSpec> specs;
  for (auto& [spec, name] : aggs) {
    specs.push_back(std::move(spec));
    names.push_back(name);
  }
  int child = stats_id_;
  op_ = std::make_unique<HashAggregate>(ctx_, std::move(op_), std::move(cols),
                                        std::move(specs));
  names_ = std::move(names);
  Instrument("HashAggregate", {child});
  return *this;
}

Plan& Plan::Select(std::vector<std::pair<ExprPtr, std::string>> exprs) {
  std::vector<ExprPtr> list;
  std::vector<std::string> names;
  for (auto& [e, name] : exprs) {
    list.push_back(std::move(e));
    names.push_back(name);
  }
  int child = stats_id_;
  op_ = std::make_unique<Project>(ctx_, std::move(op_), std::move(list));
  names_ = std::move(names);
  Instrument("Project", {child});
  return *this;
}

Plan& Plan::OrderBy(const std::vector<std::pair<std::string, bool>>& keys) {
  std::vector<SortKey> sort_keys;
  for (const auto& [name, desc] : keys) {
    sort_keys.push_back(SortKey{col(name), desc});
  }
  int child = stats_id_;
  op_ = std::make_unique<Sort>(ctx_, std::move(op_), std::move(sort_keys));
  Instrument("Sort", {child});
  return *this;
}

Plan& Plan::Take(uint64_t limit) {
  int child = stats_id_;
  op_ = std::make_unique<Limit>(std::move(op_), limit);
  Instrument("Limit", {child});
  return *this;
}

int Plan::col(const std::string& name) const {
  int c = TryCol(name);
  if (c < 0) {
    std::fprintf(stderr, "Plan: unknown column '%s'\n", name.c_str());
    MICROSPEC_CHECK(false);
  }
  return c;
}

int Plan::TryCol(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

ColMeta Plan::meta(const std::string& name) const {
  return op_->output_meta()[static_cast<size_t>(col(name))];
}

ExprPtr Plan::var(const std::string& name) const {
  return Var(RowSide::kOuter, col(name), meta(name));
}

ExprPtr Plan::inner_var(const std::string& name) const {
  return Var(RowSide::kInner, col(name), meta(name));
}

OperatorPtr Plan::Build() && { return std::move(op_); }

}  // namespace microspec
