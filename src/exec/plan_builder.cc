#include "exec/plan_builder.h"

#include "exec/analyze.h"
#include "exec/filter.h"
#include "exec/parallel.h"
#include "exec/project.h"
#include "exec/seq_scan.h"

namespace microspec {

void Plan::Instrument(std::string label, std::vector<int> children) {
  QueryStats* qs = ctx_->analyze();
  if (qs == nullptr) return;
  // Drop placeholders from inputs built before collection was enabled.
  std::erase_if(children, [](int id) { return id < 0; });
  // Sampled queries additionally get an operator span riding the same
  // profiler (sqlfe always installs QueryStats on a sampled statement, so
  // tracing never needs its own decorator). Plans build bottom-up: the
  // children's spans already exist and NewOpSpan re-parents them here.
  const trace::TraceContext& tc = ctx_->trace();
  uint32_t span = 0;
  if (tc) span = tc.trace->NewOpSpan(qs->NextNodeId(), label, children);
  stats_id_ = qs->AddNode(std::move(label), std::move(children));
  auto prof = std::make_unique<OpProfiler>(std::move(op_), qs, stats_id_);
  if (span != 0) prof->set_trace(tc.trace, span);
  op_ = std::move(prof);
}

void Plan::InstrumentFragments(std::string label, std::vector<int> children) {
  QueryStats* qs = ctx_->analyze();
  if (qs == nullptr) return;
  std::erase_if(children, [](int id) { return id < 0; });
  const trace::TraceContext& tc = ctx_->trace();
  const int node_id = qs->NextNodeId();
  if (tc) tc.trace->NewOpSpan(node_id, label, children);
  stats_id_ = qs->AddNode(std::move(label), std::move(children));
  int frag_index = 0;
  for (OperatorPtr& f : frags_) {
    auto prof = std::make_unique<OpProfiler>(std::move(f), qs, stats_id_);
    if (tc) {
      prof->set_trace(tc.trace,
                      tc.trace->NewFragmentSpan(node_id, frag_index));
    }
    f = std::move(prof);
    ++frag_index;
  }
}

void Plan::EnsureSerial() {
  if (!parallel()) return;
  int child = stats_id_;
  op_ = std::make_unique<Gather>(ctx_, std::move(frags_),
                                 std::move(frag_ctxs_), std::move(cursors_));
  frags_.clear();
  frag_ctxs_.clear();
  cursors_.clear();
  Instrument("Gather", {child});
}

Plan Plan::Scan(ExecContext* ctx, TableInfo* table, int natts) {
  std::vector<std::string> names;
  const int dop = ctx->dop();
  if (dop > 1) {
    auto cursor = std::make_shared<MorselCursor>(table->heap()->num_pages(),
                                                 ctx->morsel_pages());
    Plan plan(ctx, nullptr, {});
    for (int i = 0; i < dop; ++i) {
      std::unique_ptr<ExecContext> wctx = ctx->MakeWorkerContext();
      plan.frags_.push_back(
          std::make_unique<ParallelScan>(wctx.get(), table, cursor, natts));
      plan.frag_ctxs_.push_back(std::move(wctx));
    }
    plan.cursors_.push_back(std::move(cursor));
    int n = static_cast<int>(plan.frags_[0]->output_meta().size());
    for (int i = 0; i < n; ++i) {
      plan.names_.push_back(table->schema().column(i).name());
    }
    plan.InstrumentFragments("ParallelScan(" + table->name() + ")", {});
    return plan;
  }
  auto scan = std::make_unique<SeqScan>(ctx, table, natts);
  int n = static_cast<int>(scan->output_meta().size());
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back(table->schema().column(i).name());
  Plan plan(ctx, std::move(scan), std::move(names));
  plan.Instrument("SeqScan(" + table->name() + ")", {});
  return plan;
}

Plan& Plan::Where(ExprPtr predicate) {
  int child = stats_id_;
  if (parallel()) {
    // Filters are row-local: replicate across the fragments (each worker
    // context makes its own EVP decision — deterministic for a given expr).
    for (size_t i = 0; i + 1 < frags_.size(); ++i) {
      frags_[i] = std::make_unique<Filter>(frag_ctxs_[i].get(),
                                           std::move(frags_[i]),
                                           predicate->Clone());
    }
    size_t last = frags_.size() - 1;
    frags_[last] = std::make_unique<Filter>(
        frag_ctxs_[last].get(), std::move(frags_[last]), std::move(predicate));
    InstrumentFragments("Filter", {child});
    return *this;
  }
  op_ = std::make_unique<Filter>(ctx_, std::move(op_), std::move(predicate));
  Instrument("Filter", {child});
  return *this;
}

Plan Plan::Join(Plan outer, Plan inner,
                std::vector<std::pair<std::string, std::string>> keys,
                JoinType type, ExprPtr residual) {
  std::vector<int> outer_keys;
  std::vector<int> inner_keys;
  for (const auto& [ok, ik] : keys) {
    outer_keys.push_back(outer.col(ok));
    inner_keys.push_back(inner.col(ik));
  }
  std::vector<std::string> names = outer.names_;
  if (type == JoinType::kInner || type == JoinType::kLeft) {
    for (const std::string& n : inner.names_) names.push_back(n);
  }
  ExecContext* ctx = outer.ctx_;
  if (outer.parallel() && inner.parallel()) {
    // Parallel hash join: the inner fragments become a cooperatively built
    // shared table; each outer fragment probes it with its own HashJoin.
    // Each outer row lives in exactly one fragment, so kLeft/kSemi/kAnti
    // stay correct per fragment.
    std::vector<ColMeta> key_meta;
    key_meta.reserve(outer_keys.size());
    for (int k : outer_keys) {
      key_meta.push_back(outer.frags_[0]->output_meta()[static_cast<size_t>(k)]);
    }
    std::vector<ColMeta> inner_meta = inner.frags_[0]->output_meta();
    auto shared = std::make_shared<SharedJoinBuild>(
        std::move(inner.frags_), std::move(inner.frag_ctxs_),
        std::move(inner.cursors_), outer_keys, inner_keys, std::move(key_meta),
        std::move(inner_meta));
    Plan plan(ctx, nullptr, std::move(names));
    plan.frag_ctxs_ = std::move(outer.frag_ctxs_);
    plan.cursors_ = std::move(outer.cursors_);
    const size_t n = outer.frags_.size();
    for (size_t i = 0; i < n; ++i) {
      ExprPtr res;
      if (residual != nullptr) {
        res = i + 1 < n ? residual->Clone() : std::move(residual);
      }
      plan.frags_.push_back(std::make_unique<HashJoin>(
          plan.frag_ctxs_[i].get(), std::move(outer.frags_[i]), shared,
          outer_keys, inner_keys, type, std::move(res)));
    }
    plan.InstrumentFragments("HashJoin", {outer.stats_id_, inner.stats_id_});
    return plan;
  }
  // Mixed parallel/serial inputs fall back to a serial join below a Gather.
  outer.EnsureSerial();
  inner.EnsureSerial();
  auto join = std::make_unique<HashJoin>(
      ctx, std::move(outer.op_), std::move(inner.op_), std::move(outer_keys),
      std::move(inner_keys), type, std::move(residual));
  Plan plan(ctx, std::move(join), std::move(names));
  plan.Instrument("HashJoin", {outer.stats_id_, inner.stats_id_});
  return plan;
}

Plan Plan::LoopJoin(Plan outer, Plan inner, JoinType type, ExprPtr predicate) {
  outer.EnsureSerial();
  inner.EnsureSerial();
  std::vector<std::string> names = outer.names_;
  if (type == JoinType::kInner || type == JoinType::kLeft) {
    for (const std::string& n : inner.names_) names.push_back(n);
  }
  ExecContext* ctx = outer.ctx_;
  auto join = std::make_unique<NestedLoopJoin>(
      ctx, std::move(outer.op_), std::move(inner.op_), type,
      std::move(predicate));
  Plan plan(ctx, std::move(join), std::move(names));
  plan.Instrument("NestedLoopJoin", {outer.stats_id_, inner.stats_id_});
  return plan;
}

Plan& Plan::GroupBy(const std::vector<std::string>& group_cols,
                    std::vector<std::pair<AggSpec, std::string>> aggs) {
  std::vector<int> cols;
  std::vector<std::string> names;
  for (const std::string& g : group_cols) {
    cols.push_back(col(g));
    names.push_back(g);
  }
  std::vector<AggSpec> specs;
  for (auto& [spec, name] : aggs) {
    specs.push_back(std::move(spec));
    names.push_back(name);
  }
  int child = stats_id_;
  if (parallel()) {
    // Parallel aggregation: each fragment feeds its own local HashAggregate
    // (cloned specs — AggSpec holds a move-only expression); the merge
    // operator absorbs the fragments, their contexts and the cursors, and
    // the plan is serial from here up.
    std::vector<std::unique_ptr<HashAggregate>> locals;
    const size_t n = frags_.size();
    for (size_t i = 0; i < n; ++i) {
      std::vector<AggSpec> s;
      if (i + 1 < n) {
        s.reserve(specs.size());
        for (const AggSpec& spec : specs) {
          s.push_back(AggSpec{
              spec.kind, spec.arg != nullptr ? spec.arg->Clone() : nullptr});
        }
      } else {
        s = std::move(specs);
      }
      locals.push_back(std::make_unique<HashAggregate>(
          frag_ctxs_[i].get(), std::move(frags_[i]), cols, std::move(s)));
    }
    op_ = std::make_unique<ParallelHashAggregate>(
        ctx_, std::move(locals), std::move(frag_ctxs_), std::move(cursors_));
    frags_.clear();
    frag_ctxs_.clear();
    cursors_.clear();
    names_ = std::move(names);
    Instrument("ParallelHashAggregate", {child});
    return *this;
  }
  op_ = std::make_unique<HashAggregate>(ctx_, std::move(op_), std::move(cols),
                                        std::move(specs));
  names_ = std::move(names);
  Instrument("HashAggregate", {child});
  return *this;
}

Plan& Plan::Select(std::vector<std::pair<ExprPtr, std::string>> exprs) {
  EnsureSerial();
  std::vector<ExprPtr> list;
  std::vector<std::string> names;
  for (auto& [e, name] : exprs) {
    list.push_back(std::move(e));
    names.push_back(name);
  }
  int child = stats_id_;
  op_ = std::make_unique<Project>(ctx_, std::move(op_), std::move(list));
  names_ = std::move(names);
  Instrument("Project", {child});
  return *this;
}

Plan& Plan::OrderBy(const std::vector<std::pair<std::string, bool>>& keys) {
  EnsureSerial();
  std::vector<SortKey> sort_keys;
  for (const auto& [name, desc] : keys) {
    sort_keys.push_back(SortKey{col(name), desc});
  }
  int child = stats_id_;
  op_ = std::make_unique<Sort>(ctx_, std::move(op_), std::move(sort_keys));
  Instrument("Sort", {child});
  return *this;
}

Plan& Plan::Take(uint64_t limit) {
  EnsureSerial();
  int child = stats_id_;
  op_ = std::make_unique<Limit>(std::move(op_), limit);
  Instrument("Limit", {child});
  return *this;
}

int Plan::col(const std::string& name) const {
  int c = TryCol(name);
  if (c < 0) {
    std::fprintf(stderr, "Plan: unknown column '%s'\n", name.c_str());
    MICROSPEC_CHECK(false);
  }
  return c;
}

int Plan::TryCol(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

ColMeta Plan::meta(const std::string& name) const {
  const Operator* top = op_ != nullptr ? op_.get() : frags_[0].get();
  return top->output_meta()[static_cast<size_t>(col(name))];
}

ExprPtr Plan::var(const std::string& name) const {
  return Var(RowSide::kOuter, col(name), meta(name));
}

ExprPtr Plan::inner_var(const std::string& name) const {
  return Var(RowSide::kInner, col(name), meta(name));
}

OperatorPtr Plan::Build() && {
  EnsureSerial();
  return std::move(op_);
}

}  // namespace microspec
