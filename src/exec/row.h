#ifndef MICROSPEC_EXEC_ROW_H_
#define MICROSPEC_EXEC_ROW_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "catalog/schema.h"
#include "common/arena.h"
#include "common/counters.h"
#include "common/datum.h"
#include "common/hash.h"
#include "common/types.h"

namespace microspec {

/// Type metadata for one column of an operator's output row. Operators
/// expose a vector<ColMeta> so parents can hash/compare/copy Datums
/// correctly without reaching back into base-table schemas.
struct ColMeta {
  TypeId type = TypeId::kInt32;
  int32_t attlen = 4;  // fixed byte length, or kVariableLength

  static ColMeta Of(TypeId t, int32_t declared_char_len = 0) {
    ColMeta m;
    m.type = t;
    m.attlen = (t == TypeId::kChar) ? declared_char_len : TypeFixedLength(t);
    return m;
  }
  static ColMeta FromColumn(const Column& c) {
    ColMeta m;
    m.type = c.type();
    m.attlen = c.attlen();
    return m;
  }
};

/// The row context expressions evaluate against. For scans/filters only the
/// outer side is set; joins bind both sides while evaluating join predicates.
struct ExecRow {
  const Datum* values = nullptr;
  const bool* isnull = nullptr;
  const Datum* inner_values = nullptr;
  const bool* inner_isnull = nullptr;
};

/// Which side of an ExecRow a Var refers to.
enum class RowSide : uint8_t { kOuter = 0, kInner = 1 };

/// --- Generic (stock) per-Datum routines ------------------------------------
/// These switch on the runtime type for every call — the generality that EVP
/// and EVJ query bees fold away into monomorphic kernels.

inline uint64_t DatumHashGeneric(Datum d, const ColMeta& meta,
                                 uint64_t seed = 0) {
  workops::Bump(4);  // type dispatch + call overhead of the generic path
  switch (meta.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return HashInt64(DatumToInt64(d), seed);
    case TypeId::kFloat64:
      return HashInt64(static_cast<int64_t>(d), seed);
    case TypeId::kChar:
      return Hash64(DatumToPointer(d), static_cast<size_t>(meta.attlen), seed);
    case TypeId::kVarchar: {
      const char* p = DatumToPointer(d);
      return Hash64(VarlenaPayload(p), VarlenaPayloadSize(p), seed);
    }
  }
  return 0;
}

inline bool DatumEqualsGeneric(Datum a, Datum b, const ColMeta& meta) {
  workops::Bump(4);
  switch (meta.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return DatumToInt64(a) == DatumToInt64(b);
    case TypeId::kFloat64:
      return DatumToFloat64(a) == DatumToFloat64(b);
    case TypeId::kChar:
      return std::memcmp(DatumToPointer(a), DatumToPointer(b),
                         static_cast<size_t>(meta.attlen)) == 0;
    case TypeId::kVarchar: {
      const char* pa = DatumToPointer(a);
      const char* pb = DatumToPointer(b);
      uint32_t la = VarlenaPayloadSize(pa);
      uint32_t lb = VarlenaPayloadSize(pb);
      return la == lb &&
             std::memcmp(VarlenaPayload(pa), VarlenaPayload(pb), la) == 0;
    }
  }
  return false;
}

/// Three-way compare used by Sort and by range predicates.
inline int DatumCompareGeneric(Datum a, Datum b, const ColMeta& meta) {
  workops::Bump(4);
  switch (meta.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate: {
      int64_t va = DatumToInt64(a);
      int64_t vb = DatumToInt64(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case TypeId::kFloat64: {
      double va = DatumToFloat64(a);
      double vb = DatumToFloat64(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case TypeId::kChar: {
      int c = std::memcmp(DatumToPointer(a), DatumToPointer(b),
                          static_cast<size_t>(meta.attlen));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kVarchar: {
      const char* pa = DatumToPointer(a);
      const char* pb = DatumToPointer(b);
      uint32_t la = VarlenaPayloadSize(pa);
      uint32_t lb = VarlenaPayloadSize(pb);
      uint32_t n = la < lb ? la : lb;
      int c = std::memcmp(VarlenaPayload(pa), VarlenaPayload(pb), n);
      if (c != 0) return c < 0 ? -1 : 1;
      return la < lb ? -1 : (la > lb ? 1 : 0);
    }
  }
  return 0;
}

/// Deep-copies a Datum into `arena` when it is pass-by-reference; returns
/// the datum unchanged otherwise. Used when materializing rows (hash join
/// build side, sort buffers, aggregation keys).
inline Datum CopyDatum(Arena* arena, Datum d, const ColMeta& meta) {
  if (TypeByVal(meta.type)) return d;
  if (meta.type == TypeId::kVarchar) {
    const char* p = DatumToPointer(d);
    return DatumFromPointer(arena->CopyBytes(p, VarlenaSize(p), 4));
  }
  return DatumFromPointer(
      arena->CopyBytes(DatumToPointer(d), static_cast<size_t>(meta.attlen)));
}

}  // namespace microspec

#endif  // MICROSPEC_EXEC_ROW_H_
