#ifndef MICROSPEC_EXEC_HASH_JOIN_H_
#define MICROSPEC_EXEC_HASH_JOIN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace microspec {

class SharedJoinBuild;

/// One row of a join build table: the key hash, the intrusive bucket chain,
/// and the materialized inner columns. Allocated from a build arena by the
/// serial HashJoin build or by SharedJoinBuild's parallel partitions.
struct JoinBuildRow {
  uint64_t hash;
  JoinBuildRow* next;
  Datum* values;
  bool* isnull;
};

/// Hash equi-join. The inner child is built into an in-memory chained hash
/// table; the outer child probes. Per-probe key hashing/comparison goes
/// through a JoinKeyEvaluator: the generic implementation consults runtime
/// type metadata per key per tuple, while the EVJ query bee supplies a
/// monomorphized kernel with attribute numbers and types burned in at
/// query-preparation time (Section V). When EVJ is enabled, the probe loop
/// itself is also statically specialized on the join type, mirroring the
/// paper's pre-compiled join-type variants; the stock path dispatches on the
/// join type at run time.
///
/// Output: outer columns ++ inner columns for kInner/kLeft (inner columns
/// NULL for unmatched kLeft rows); outer columns only for kSemi/kAnti.
class HashJoin final : public Operator {
 public:
  HashJoin(ExecContext* ctx, OperatorPtr outer, OperatorPtr inner,
           std::vector<int> outer_keys, std::vector<int> inner_keys,
           JoinType join_type, ExprPtr residual = nullptr);

  /// Parallel probe instance: one of dop HashJoins sharing `shared`'s build
  /// table (built cooperatively by the probe workers on first Init). Probe
  /// semantics are unchanged — each outer row lives in exactly one
  /// fragment, so kLeft/kSemi/kAnti stay correct per fragment.
  HashJoin(ExecContext* ctx, OperatorPtr outer,
           std::shared_ptr<SharedJoinBuild> shared,
           std::vector<int> outer_keys, std::vector<int> inner_keys,
           JoinType join_type, ExprPtr residual = nullptr);

  ~HashJoin() override;

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  using BuildRow = JoinBuildRow;

  Status BuildTable();
  /// Flushes probe-rows vs matches into StatsFeedback, keyed by the EVJ
  /// fingerprint (observed join selectivity for the future optimizer).
  void FlushStats();
  /// Emits outer ++ inner (inner may be nullptr => NULLs for kLeft).
  void EmitCombined(const BuildRow* inner_row);
  bool RowMatches(const BuildRow* entry) const;

  /// Probe loop with the join type dispatched per call (stock path).
  Status NextGeneric(bool* has_row);
  /// Probe loop with the join type fixed at compile time (EVJ path).
  template <JoinType JT>
  Status NextStatic(bool* has_row);

  ExecContext* ctx_;
  OperatorPtr outer_;
  OperatorPtr inner_;  // null when shared_ supplies the build table
  std::shared_ptr<SharedJoinBuild> shared_;
  std::vector<int> outer_keys_;
  std::vector<int> inner_keys_;
  JoinType join_type_;
  ExprPtr residual_expr_;
  std::unique_ptr<PredicateEvaluator> residual_;
  std::unique_ptr<JoinKeyEvaluator> keys_;

  Status (HashJoin::*next_fn_)(bool*) = nullptr;

  std::vector<BuildRow*> buckets_;
  /// Probe view of the bucket table: own buckets_ or the shared build's.
  BuildRow* const* buckets_data_ = nullptr;
  uint64_t bucket_mask_ = 0;
  Arena build_arena_;

  // Probe state.
  BuildRow* chain_ = nullptr;
  uint64_t cur_hash_ = 0;
  bool outer_matched_ = false;
  bool outer_valid_ = false;

  size_t outer_width_ = 0;
  size_t inner_width_ = 0;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;

  // Observed-selectivity accounting (flushed on Close when the context
  // carries a StatsFeedback; the counters themselves are always cheap).
  std::string fingerprint_;
  uint64_t probe_rows_ = 0;
  uint64_t match_rows_ = 0;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_HASH_JOIN_H_
