#ifndef MICROSPEC_EXEC_PARALLEL_H_
#define MICROSPEC_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/operator.h"

namespace microspec {

/// --- Morsel-driven parallel execution ---------------------------------------
/// A parallel pipeline exists as `dop` per-worker operator fragments, each
/// owning a worker ExecContext, all fed by shared MorselCursors at the scan
/// leaves. The operators here are the points where fragments meet:
///
///   Gather                — fans worker rows into the serial Volcano tree.
///   SharedJoinBuild       — one build table, built cooperatively by the
///                           probe workers, shared by dop HashJoin instances.
///   ParallelHashAggregate — per-worker local aggregation, merged on finish.
///
/// Deadlock discipline: executor-pool tasks never *wait for a pool slot*.
/// Gather workers block only on the exchange's bounded queue, which the
/// consumer is guaranteed to either drain (Next) or cancel (Close /
/// StopWorkers wake every waiter); SharedJoinBuild waits only on co-workers
/// that are actively draining; and Gather/ParallelHashAggregate detect that
/// they are running *on* a pool thread (a fragment nested below another
/// parallel operator) and fall back to inline sequential execution instead
/// of submitting.

/// Exchange operator: runs its worker fragments on the executor pool and
/// re-exposes their rows, one at a time, on the consuming thread. Workers
/// hand whole RowBatches across: with batching enabled each batch is the
/// fragment's real NextBatch output — for a scan leaf a page-granular batch
/// whose pointer Datums stay valid because the batch carries the page pin
/// across the thread boundary, no per-row deep copy. With batching off the
/// scalar adapter fills the batch (deep-copying by-reference Datums into
/// the batch arena), which is exactly the pre-batch exchange behavior.
///
/// The queue is bounded at gather_max_batches() batches per worker; a full
/// queue blocks the producing worker until the consumer pops or cancels, so
/// a slow consumer bounds the exchange's memory (and pinned pages) instead
/// of letting it grow without limit.
///
/// Close() (or a re-Init rescan) cancels: workers observe cancelled_ per
/// batch (including while blocked on the full queue), close their fragments
/// — releasing any pinned pages — and Close returns only once every worker
/// has quiesced, so a LIMIT above a Gather never leaks pins.
class Gather final : public Operator {
 public:
  Gather(ExecContext* ctx, std::vector<OperatorPtr> workers,
         std::vector<std::unique_ptr<ExecContext>> worker_ctxs,
         std::vector<std::shared_ptr<MorselCursor>> cursors);
  ~Gather() override;

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  /// Adapter batch capacity when batching is disabled (legacy exchange
  /// granularity).
  static constexpr int kScalarBatchRows = 1024;

  void WorkerMain(size_t i);
  /// Cancels and joins in-flight workers; idempotent.
  void StopWorkers();

  ExecContext* ctx_;
  std::vector<OperatorPtr> workers_;
  std::vector<std::unique_ptr<ExecContext>> worker_ctxs_;
  std::vector<std::shared_ptr<MorselCursor>> cursors_;
  size_t width_;

  // Inline fallback (no executor, or already on a pool thread): drain the
  // fragments sequentially on the calling thread, no copies, no queue.
  bool inline_mode_ = false;
  size_t inline_cur_ = 0;
  bool inline_open_ = false;

  std::mutex mu_;
  std::condition_variable ready_;  // consumer: queue non-empty or all done
  std::condition_variable space_;  // producers: queue below bound or cancel
  std::condition_variable idle_;   // StopWorkers: active_ == 0
  std::deque<std::unique_ptr<RowBatch>> queue_;
  size_t max_queue_ = 0;
  size_t active_ = 0;
  bool started_ = false;
  Status worker_status_;
  std::atomic<bool> cancelled_{false};

  std::unique_ptr<RowBatch> cur_;
  int cur_sel_ = 0;  // position within cur_'s selection vector
  std::vector<Datum> row_values_;        // consumer-side row-major view
  std::unique_ptr<bool[]> row_isnull_;
};

/// The build side of a parallel hash join: dop probe-side HashJoin instances
/// share one bucket table. The first Init calls arrive on the probe worker
/// threads; each arriving worker claims undrained build partitions (the
/// inner plan's fragments) from an atomic index and drains them into
/// per-partition row lists, and the last to finish merges the lists into
/// the shared chained table. Workers that arrive after all partitions are
/// claimed wait for the merge. The table is built once and reused across
/// probe re-Inits (the data under a query does not change mid-plan).
class SharedJoinBuild {
 public:
  SharedJoinBuild(std::vector<OperatorPtr> partitions,
                  std::vector<std::unique_ptr<ExecContext>> partition_ctxs,
                  std::vector<std::shared_ptr<MorselCursor>> cursors,
                  std::vector<int> outer_keys, std::vector<int> inner_keys,
                  std::vector<ColMeta> key_meta,
                  std::vector<ColMeta> inner_meta);
  MICROSPEC_DISALLOW_COPY_AND_MOVE(SharedJoinBuild);

  /// Cooperative build; returns once the shared table is published (or the
  /// first drain error). Safe to call from any number of threads.
  Status EnsureBuilt();

  const std::vector<ColMeta>& inner_meta() const { return inner_meta_; }
  JoinBuildRow* const* buckets() const { return buckets_.data(); }
  uint64_t bucket_mask() const { return bucket_mask_; }

 private:
  struct Partition {
    std::vector<JoinBuildRow*> rows;
    Arena arena;
  };

  Status DrainPartition(size_t i);
  /// Chains every partition's rows into buckets_ (mutex_ held).
  void MergeLocked();

  std::vector<OperatorPtr> partition_ops_;
  std::vector<std::unique_ptr<ExecContext>> partition_ctxs_;
  std::vector<std::shared_ptr<MorselCursor>> cursors_;
  std::vector<int> outer_keys_;
  std::vector<int> inner_keys_;
  std::vector<ColMeta> key_meta_;
  std::vector<ColMeta> inner_meta_;

  std::atomic<size_t> next_partition_{0};
  std::vector<Partition> partials_;

  std::mutex mutex_;
  std::condition_variable built_cv_;
  size_t drained_ = 0;
  bool built_ = false;
  Status status_;

  std::vector<JoinBuildRow*> buckets_;
  uint64_t bucket_mask_ = 0;
};

/// Parallel aggregation: each worker fragment feeds its own HashAggregate
/// (local groups, no sharing, so the per-row update path is untouched); on
/// the first Next the partials run on the executor pool, then merge into
/// locals[0] — sums and counts add, MIN/MAX compare, group keys deep-copy
/// into the surviving aggregate's arena — and emission proceeds serially.
class ParallelHashAggregate final : public Operator {
 public:
  ParallelHashAggregate(ExecContext* ctx,
                        std::vector<std::unique_ptr<HashAggregate>> locals,
                        std::vector<std::unique_ptr<ExecContext>> worker_ctxs,
                        std::vector<std::shared_ptr<MorselCursor>> cursors);

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  Status RunPartials();

  ExecContext* ctx_;
  std::vector<std::unique_ptr<HashAggregate>> locals_;
  std::vector<std::unique_ptr<ExecContext>> worker_ctxs_;
  std::vector<std::shared_ptr<MorselCursor>> cursors_;
  bool merged_ = false;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_PARALLEL_H_
