#ifndef MICROSPEC_EXEC_PROJECT_H_
#define MICROSPEC_EXEC_PROJECT_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "exec/operator.h"

namespace microspec {

/// Computes a list of output expressions per input row.
class Project final : public Operator {
 public:
  Project(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs)
      : ctx_(ctx), child_(std::move(child)), exprs_(std::move(exprs)) {
    meta_.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) meta_.push_back(e->meta());
  }

  Status Init() override {
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    values_buf_.assign(exprs_.size(), 0);
    isnull_buf_ = std::make_unique<bool[]>(exprs_.size());
    values_ = values_buf_.data();
    isnull_ = isnull_buf_.get();
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
    if (!*has_row) return Status::OK();
    ExecRow row{child_->values(), child_->isnull(), nullptr, nullptr};
    workops::Bump(6);  // projection-node dispatch per row
    for (size_t i = 0; i < exprs_.size(); ++i) {
      bool n = false;
      values_buf_[i] = exprs_[i]->Eval(row, &n);
      isnull_buf_[i] = n;
    }
    return Status::OK();
  }

  void Close() override { child_->Close(); }

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
};

/// Passes through at most `limit` rows.
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {
    meta_ = child_->output_meta();
  }

  Status Init() override {
    produced_ = 0;
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    if (produced_ >= limit_) {
      *has_row = false;
      return Status::OK();
    }
    MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
    if (*has_row) {
      ++produced_;
      values_ = child_->values();
      isnull_ = child_->isnull();
    }
    return Status::OK();
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_PROJECT_H_
