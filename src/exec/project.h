#ifndef MICROSPEC_EXEC_PROJECT_H_
#define MICROSPEC_EXEC_PROJECT_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "exec/operator.h"

namespace microspec {

/// Computes a list of output expressions per input row.
class Project final : public Operator {
 public:
  Project(ExecContext* ctx, OperatorPtr child, std::vector<ExprPtr> exprs)
      : ctx_(ctx), child_(std::move(child)), exprs_(std::move(exprs)) {
    meta_.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) meta_.push_back(e->meta());
  }

  Status Init() override {
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    values_buf_.assign(exprs_.size(), 0);
    isnull_buf_ = std::make_unique<bool[]>(exprs_.size());
    crow_values_.assign(child_->output_meta().size(), 0);
    crow_isnull_ = std::make_unique<bool[]>(child_->output_meta().size());
    values_ = values_buf_.data();
    isnull_ = isnull_buf_.get();
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
    if (!*has_row) return Status::OK();
    ExecRow row{child_->values(), child_->isnull(), nullptr, nullptr};
    workops::Bump(6);  // projection-node dispatch per row
    for (size_t i = 0; i < exprs_.size(); ++i) {
      bool n = false;
      values_buf_[i] = exprs_[i]->Eval(row, &n);
      isnull_buf_[i] = n;
    }
    return Status::OK();
  }

  /// Batch path: evaluates the projection per selected child row into a
  /// fresh dense batch. By-reference results are copied into the output
  /// batch's arena — expressions may compute them in per-row scratch that
  /// the next row's Eval overwrites.
  Status NextBatch(RowBatch* batch) override {
    batch->Reset();
    if (child_batch_ == nullptr ||
        child_batch_->capacity() != batch->capacity()) {
      child_batch_ = std::make_unique<RowBatch>(
          static_cast<int>(child_->output_meta().size()), batch->capacity());
    }
    MICROSPEC_RETURN_NOT_OK(child_->NextBatch(child_batch_.get()));
    const int nsel = child_batch_->selected();
    if (nsel == 0) return Status::OK();
    workops::Bump(6);  // projection-node dispatch, amortized over the batch
    const int* sel = child_batch_->sel();
    for (int i = 0; i < nsel; ++i) {
      child_batch_->GatherRow(sel[i], crow_values_.data(), crow_isnull_.get());
      ExecRow row{crow_values_.data(), crow_isnull_.get(), nullptr, nullptr};
      for (size_t e = 0; e < exprs_.size(); ++e) {
        bool n = false;
        Datum d = exprs_[e]->Eval(row, &n);
        const int c = static_cast<int>(e);
        batch->nulls(c)[i] = n;
        batch->col(c)[i] =
            n ? 0 : CopyDatum(batch->arena(), d, meta_[e]);
      }
    }
    batch->SetAllSelected(nsel);
    return Status::OK();
  }

  bool BatchCapable() const override { return child_->BatchCapable(); }

  void Close() override { child_->Close(); }

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
  std::vector<Datum> crow_values_;
  std::unique_ptr<bool[]> crow_isnull_;
  std::unique_ptr<RowBatch> child_batch_;
};

/// Passes through at most `limit` rows.
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {
    meta_ = child_->output_meta();
  }

  Status Init() override {
    produced_ = 0;
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    if (produced_ >= limit_) {
      *has_row = false;
      return Status::OK();
    }
    MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
    if (*has_row) {
      ++produced_;
      values_ = child_->values();
      isnull_ = child_->isnull();
    }
    return Status::OK();
  }

  /// Batch path: truncates the selection of the final batch to the
  /// remaining quota (mid-batch cancel). The batch's page pin is dropped by
  /// the caller's Reset/destruction as usual — nothing leaks.
  Status NextBatch(RowBatch* batch) override {
    if (produced_ >= limit_) {
      batch->Reset();  // selected() == 0 => end of stream
      return Status::OK();
    }
    MICROSPEC_RETURN_NOT_OK(child_->NextBatch(batch));
    const uint64_t remaining = limit_ - produced_;
    if (static_cast<uint64_t>(batch->selected()) > remaining) {
      batch->SetSelected(static_cast<int>(remaining));
    }
    produced_ += static_cast<uint64_t>(batch->selected());
    return Status::OK();
  }

  bool BatchCapable() const override { return child_->BatchCapable(); }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_PROJECT_H_
