#include "exec/hash_join.h"

#include "common/counters.h"
#include "exec/parallel.h"
#include "exec/shared_bees.h"
#include "exec/stats_feedback.h"

namespace microspec {

HashJoin::HashJoin(ExecContext* ctx, OperatorPtr outer, OperatorPtr inner,
                   std::vector<int> outer_keys, std::vector<int> inner_keys,
                   JoinType join_type, ExprPtr residual)
    : ctx_(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_keys_(std::move(outer_keys)),
      inner_keys_(std::move(inner_keys)),
      join_type_(join_type),
      residual_expr_(std::move(residual)) {
  MICROSPEC_CHECK(outer_keys_.size() == inner_keys_.size());
  outer_width_ = outer_->output_meta().size();
  inner_width_ = inner_->output_meta().size();
  meta_ = outer_->output_meta();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft) {
    for (const ColMeta& m : inner_->output_meta()) meta_.push_back(m);
  }
}

HashJoin::HashJoin(ExecContext* ctx, OperatorPtr outer,
                   std::shared_ptr<SharedJoinBuild> shared,
                   std::vector<int> outer_keys, std::vector<int> inner_keys,
                   JoinType join_type, ExprPtr residual)
    : ctx_(ctx),
      outer_(std::move(outer)),
      shared_(std::move(shared)),
      outer_keys_(std::move(outer_keys)),
      inner_keys_(std::move(inner_keys)),
      join_type_(join_type),
      residual_expr_(std::move(residual)) {
  MICROSPEC_CHECK(outer_keys_.size() == inner_keys_.size());
  outer_width_ = outer_->output_meta().size();
  inner_width_ = shared_->inner_meta().size();
  meta_ = outer_->output_meta();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft) {
    for (const ColMeta& m : shared_->inner_meta()) meta_.push_back(m);
  }
}

HashJoin::~HashJoin() = default;

Status HashJoin::Init() {
  // Query-preparation-time decisions: key kernel (EVJ seam) and join-type
  // dispatch mode.
  std::vector<ColMeta> key_meta;
  key_meta.reserve(outer_keys_.size());
  for (size_t i = 0; i < outer_keys_.size(); ++i) {
    key_meta.push_back(outer_->output_meta()[static_cast<size_t>(
        outer_keys_[i])]);
  }
  if (keys_ == nullptr) {
    if (ctx_->stats_feedback() != nullptr) {
      // The exact QueryBeeCache key — join selectivity samples line up with
      // the shared-bee accounting from PR 7.
      fingerprint_ = JoinKeysFingerprint(outer_keys_, inner_keys_, key_meta,
                                         static_cast<int>(outer_width_),
                                         static_cast<int>(inner_width_));
    }
    keys_ = ctx_->MakeJoinKeys(outer_keys_, inner_keys_, key_meta,
                               static_cast<int>(outer_width_),
                               static_cast<int>(inner_width_));
  }
  if (residual_expr_ != nullptr) {
    residual_ = std::make_unique<ExprPredicate>(std::move(residual_expr_));
  }
  if (ctx_->options().enable_evj) {
    switch (join_type_) {
      case JoinType::kInner:
        next_fn_ = &HashJoin::NextStatic<JoinType::kInner>;
        break;
      case JoinType::kLeft:
        next_fn_ = &HashJoin::NextStatic<JoinType::kLeft>;
        break;
      case JoinType::kSemi:
        next_fn_ = &HashJoin::NextStatic<JoinType::kSemi>;
        break;
      case JoinType::kAnti:
        next_fn_ = &HashJoin::NextStatic<JoinType::kAnti>;
        break;
    }
  } else {
    next_fn_ = &HashJoin::NextGeneric;
  }

  values_buf_.assign(outer_width_ + inner_width_, 0);
  isnull_buf_ = std::make_unique<bool[]>(outer_width_ + inner_width_);
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();

  MICROSPEC_RETURN_NOT_OK(outer_->Init());
  MICROSPEC_RETURN_NOT_OK(BuildTable());
  chain_ = nullptr;
  outer_valid_ = false;
  return Status::OK();
}

Status HashJoin::BuildTable() {
  if (shared_ != nullptr) {
    // Parallel build: participate in (or wait out) the cooperative build,
    // then probe the shared table. Built once; re-Init reuses it.
    MICROSPEC_RETURN_NOT_OK(shared_->EnsureBuilt());
    buckets_data_ = shared_->buckets();
    bucket_mask_ = shared_->bucket_mask();
    return Status::OK();
  }
  build_arena_.Reset();  // re-Init rebuilds from scratch
  MICROSPEC_RETURN_NOT_OK(inner_->Init());
  std::vector<BuildRow*> rows;
  const std::vector<ColMeta>& im = inner_->output_meta();
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(inner_->Next(&has_row));
    if (!has_row) break;
    auto* row = static_cast<BuildRow*>(
        build_arena_.Allocate(sizeof(BuildRow), alignof(BuildRow)));
    row->values = static_cast<Datum*>(
        build_arena_.Allocate(sizeof(Datum) * inner_width_, 8));
    row->isnull =
        static_cast<bool*>(build_arena_.Allocate(inner_width_, 1));
    const Datum* v = inner_->values();
    const bool* n = inner_->isnull();
    for (size_t i = 0; i < inner_width_; ++i) {
      row->isnull[i] = n != nullptr && n[i];
      row->values[i] =
          row->isnull[i] ? 0 : CopyDatum(&build_arena_, v[i], im[i]);
    }
    row->hash = keys_->HashInner(row->values, row->isnull);
    rows.push_back(row);
  }
  inner_->Close();

  size_t nbuckets = 16;
  while (nbuckets < rows.size() * 2) nbuckets <<= 1;
  buckets_.assign(nbuckets, nullptr);
  bucket_mask_ = nbuckets - 1;
  for (BuildRow* row : rows) {
    size_t b = row->hash & bucket_mask_;
    row->next = buckets_[b];
    buckets_[b] = row;
  }
  buckets_data_ = buckets_.data();
  return Status::OK();
}

void HashJoin::EmitCombined(const BuildRow* inner_row) {
  const Datum* ov = outer_->values();
  const bool* on = outer_->isnull();
  for (size_t i = 0; i < outer_width_; ++i) {
    values_buf_[i] = ov[i];
    isnull_buf_[i] = on != nullptr && on[i];
  }
  if (join_type_ == JoinType::kSemi || join_type_ == JoinType::kAnti) return;
  for (size_t i = 0; i < inner_width_; ++i) {
    if (inner_row == nullptr) {
      values_buf_[outer_width_ + i] = 0;
      isnull_buf_[outer_width_ + i] = true;
    } else {
      values_buf_[outer_width_ + i] = inner_row->values[i];
      isnull_buf_[outer_width_ + i] = inner_row->isnull[i];
    }
  }
}

bool HashJoin::RowMatches(const BuildRow* entry) const {
  if (entry->hash != cur_hash_) return false;
  if (!keys_->KeysEqual(outer_->values(), outer_->isnull(), entry->values,
                        entry->isnull)) {
    return false;
  }
  if (residual_ != nullptr) {
    ExecRow row{outer_->values(), outer_->isnull(), entry->values,
                entry->isnull};
    if (!residual_->Matches(row)) return false;
  }
  return true;
}

Status HashJoin::NextGeneric(bool* has_row) {
  for (;;) {
    // Resume a partially-consumed match chain (inner/left emit per match).
    if (outer_valid_) {
      // The stock path re-dispatches on the join type for every probe step,
      // the generality EVJ's pre-compiled variants remove.
      workops::Bump(3);
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeft:
          while (chain_ != nullptr) {
            BuildRow* entry = chain_;
            chain_ = chain_->next;
            workops::Bump(3);
            if (RowMatches(entry)) {
              outer_matched_ = true;
              EmitCombined(entry);
              *has_row = true;
              return Status::OK();
            }
          }
          if (join_type_ == JoinType::kLeft && !outer_matched_) {
            outer_matched_ = true;
            EmitCombined(nullptr);
            *has_row = true;
            outer_valid_ = false;
            return Status::OK();
          }
          outer_valid_ = false;
          break;
        case JoinType::kSemi:
        case JoinType::kAnti: {
          bool found = false;
          while (chain_ != nullptr) {
            BuildRow* entry = chain_;
            chain_ = chain_->next;
            workops::Bump(3);
            if (RowMatches(entry)) {
              found = true;
              break;
            }
          }
          outer_valid_ = false;
          if (found == (join_type_ == JoinType::kSemi)) {
            EmitCombined(nullptr);
            *has_row = true;
            return Status::OK();
          }
          break;
        }
      }
    }
    // Advance the outer side and start a new probe.
    MICROSPEC_RETURN_NOT_OK(outer_->Next(has_row));
    if (!*has_row) return Status::OK();
    ++probe_rows_;
    cur_hash_ = keys_->HashOuter(outer_->values(), outer_->isnull());
    chain_ = buckets_data_[cur_hash_ & bucket_mask_];
    outer_matched_ = false;
    outer_valid_ = true;
    workops::Bump(5);  // bucket computation + probe setup in the stock path
  }
}

template <JoinType JT>
Status HashJoin::NextStatic(bool* has_row) {
  for (;;) {
    if (outer_valid_) {
      if constexpr (JT == JoinType::kInner || JT == JoinType::kLeft) {
        while (chain_ != nullptr) {
          BuildRow* entry = chain_;
          chain_ = chain_->next;
          workops::Bump(2);
          if (RowMatches(entry)) {
            outer_matched_ = true;
            EmitCombined(entry);
            *has_row = true;
            return Status::OK();
          }
        }
        if constexpr (JT == JoinType::kLeft) {
          if (!outer_matched_) {
            outer_matched_ = true;
            EmitCombined(nullptr);
            *has_row = true;
            outer_valid_ = false;
            return Status::OK();
          }
        }
        outer_valid_ = false;
      } else {
        bool found = false;
        while (chain_ != nullptr) {
          BuildRow* entry = chain_;
          chain_ = chain_->next;
          workops::Bump(2);
          if (RowMatches(entry)) {
            found = true;
            break;
          }
        }
        outer_valid_ = false;
        if (found == (JT == JoinType::kSemi)) {
          EmitCombined(nullptr);
          *has_row = true;
          return Status::OK();
        }
      }
    }
    MICROSPEC_RETURN_NOT_OK(outer_->Next(has_row));
    if (!*has_row) return Status::OK();
    ++probe_rows_;
    cur_hash_ = keys_->HashOuter(outer_->values(), outer_->isnull());
    chain_ = buckets_data_[cur_hash_ & bucket_mask_];
    outer_matched_ = false;
    outer_valid_ = true;
    workops::Bump(3);
  }
}

Status HashJoin::Next(bool* has_row) {
  Status st = (this->*next_fn_)(has_row);
  if (st.ok() && *has_row) ++match_rows_;
  return st;
}

void HashJoin::FlushStats() {
  if (probe_rows_ == 0 && match_rows_ == 0) return;
  StatsFeedback* sf = ctx_->stats_feedback();
  if (sf != nullptr && !fingerprint_.empty()) {
    std::string display = "outer(";
    for (size_t i = 0; i < outer_keys_.size(); ++i) {
      if (i != 0) display += ',';
      display += "$" + std::to_string(outer_keys_[i]);
    }
    display += ")=inner(";
    for (size_t i = 0; i < inner_keys_.size(); ++i) {
      if (i != 0) display += ',';
      display += "$" + std::to_string(inner_keys_[i]);
    }
    display += ')';
    sf->RecordJoin(fingerprint_, display, probe_rows_, match_rows_);
  }
  probe_rows_ = match_rows_ = 0;
}

void HashJoin::Close() {
  outer_->Close();
  FlushStats();
  if (shared_ != nullptr) return;  // the shared table outlives this probe
  buckets_.clear();
  buckets_data_ = nullptr;
  build_arena_.Reset();
}

}  // namespace microspec
