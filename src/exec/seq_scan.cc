#include "exec/seq_scan.h"

#include "exec/stats_feedback.h"

namespace microspec {

namespace {

/// A per-scan sketch collector when workload feedback is on; null (and
/// therefore one never-taken branch per row) otherwise.
std::unique_ptr<ScanStatsCollector> MakeScanCollector(
    ExecContext* ctx, TableInfo* table, int natts,
    const std::vector<ColMeta>& meta) {
  if (ctx->stats_feedback() == nullptr) return nullptr;
  std::vector<std::string> cols;
  cols.reserve(static_cast<size_t>(natts));
  for (int i = 0; i < natts; ++i) {
    cols.push_back(table->schema().column(i).name());
  }
  return std::make_unique<ScanStatsCollector>(table->name(), std::move(cols),
                                              meta);
}

}  // namespace

SeqScan::SeqScan(ExecContext* ctx, TableInfo* table, int natts_to_fetch)
    : ctx_(ctx), table_(table) {
  int all = table->schema().natts();
  natts_ = (natts_to_fetch < 0 || natts_to_fetch > all) ? all : natts_to_fetch;
  meta_.reserve(static_cast<size_t>(natts_));
  for (int i = 0; i < natts_; ++i) {
    meta_.push_back(ColMeta::FromColumn(table->schema().column(i)));
  }
}

Status SeqScan::Init() {
  deformer_ = ctx_->DeformerFor(table_);
  values_buf_.assign(static_cast<size_t>(natts_), 0);
  isnull_buf_ = std::make_unique<bool[]>(static_cast<size_t>(natts_));
  for (int i = 0; i < natts_; ++i) isnull_buf_[i] = false;
  if (stats_ == nullptr) {
    stats_ = MakeScanCollector(ctx_, table_, natts_, meta_);
  }
  iter_.emplace(table_->heap()->Scan());
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();
  return Status::OK();
}

Status SeqScan::Next(bool* has_row) {
  const char* tuple = nullptr;
  uint32_t len = 0;
  TupleId tid = 0;
  if (!iter_->Next(&tuple, &len, &tid)) {
    if (!iter_->status().ok()) return iter_->status();
    *has_row = false;
    return Status::OK();
  }
  workops::Bump(10);  // executor node dispatch (ExecProcNode analog)
  deformer_->Deform(tuple, natts_, values_buf_.data(), isnull_buf_.get());
  if (stats_ != nullptr) {
    stats_->ObserveRow(values_buf_.data(), isnull_buf_.get());
  }
  *has_row = true;
  return Status::OK();
}

Status SeqScan::NextBatch(RowBatch* batch) {
  batch->Reset();
  const int cap = batch->capacity();
  tuple_buf_.resize(static_cast<size_t>(cap));
  int n = iter_->NextPageBatch(tuple_buf_.data(), cap, batch->pin());
  if (n == 0) {
    return iter_->status();  // OK at end-of-relation; selected() stays 0
  }
  workops::Bump(10);  // executor node dispatch, amortized over the batch
  deformer_->DeformBatch(tuple_buf_.data(), n, natts_, batch->cols(),
                         batch->null_cols());
  batch->SetAllSelected(n);
  if (stats_ != nullptr) stats_->ObserveBatch(*batch);
  return Status::OK();
}

void SeqScan::Close() {
  iter_.reset();
  if (stats_ != nullptr) {
    ctx_->stats_feedback()->MergeScan(*stats_);
    stats_.reset();
  }
}

ParallelScan::ParallelScan(ExecContext* ctx, TableInfo* table,
                           std::shared_ptr<MorselCursor> cursor,
                           int natts_to_fetch)
    : ctx_(ctx), table_(table), cursor_(std::move(cursor)) {
  int all = table->schema().natts();
  natts_ = (natts_to_fetch < 0 || natts_to_fetch > all) ? all : natts_to_fetch;
  meta_.reserve(static_cast<size_t>(natts_));
  for (int i = 0; i < natts_; ++i) {
    meta_.push_back(ColMeta::FromColumn(table->schema().column(i)));
  }
}

Status ParallelScan::Init() {
  deformer_ = ctx_->DeformerFor(table_);
  values_buf_.assign(static_cast<size_t>(natts_), 0);
  isnull_buf_ = std::make_unique<bool[]>(static_cast<size_t>(natts_));
  for (int i = 0; i < natts_; ++i) isnull_buf_[i] = false;
  if (stats_ == nullptr) {
    stats_ = MakeScanCollector(ctx_, table_, natts_, meta_);
  }
  iter_.reset();  // first Next() claims the first morsel
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();
  return Status::OK();
}

Status ParallelScan::Next(bool* has_row) {
  const char* tuple = nullptr;
  uint32_t len = 0;
  TupleId tid = 0;
  for (;;) {
    if (iter_.has_value()) {
      if (iter_->Next(&tuple, &len, &tid)) break;
      if (!iter_->status().ok()) return iter_->status();
      iter_.reset();  // morsel exhausted; release its last page pin
    }
    PageNo begin = 0;
    PageNo end = 0;
    if (!cursor_->Claim(&begin, &end)) {
      *has_row = false;
      return Status::OK();
    }
    iter_.emplace(table_->heap()->Scan(begin, end));
  }
  workops::Bump(10);  // executor node dispatch (ExecProcNode analog)
  deformer_->Deform(tuple, natts_, values_buf_.data(), isnull_buf_.get());
  if (stats_ != nullptr) {
    stats_->ObserveRow(values_buf_.data(), isnull_buf_.get());
  }
  *has_row = true;
  return Status::OK();
}

Status ParallelScan::NextBatch(RowBatch* batch) {
  batch->Reset();
  const int cap = batch->capacity();
  tuple_buf_.resize(static_cast<size_t>(cap));
  int n = 0;
  for (;;) {
    if (iter_.has_value()) {
      n = iter_->NextPageBatch(tuple_buf_.data(), cap, batch->pin());
      if (n > 0) break;
      if (!iter_->status().ok()) return iter_->status();
      iter_.reset();  // morsel exhausted; release its last page pin
    }
    PageNo begin = 0;
    PageNo end = 0;
    if (!cursor_->Claim(&begin, &end)) {
      return Status::OK();  // end of relation; selected() stays 0
    }
    iter_.emplace(table_->heap()->Scan(begin, end));
  }
  workops::Bump(10);  // executor node dispatch, amortized over the batch
  deformer_->DeformBatch(tuple_buf_.data(), n, natts_, batch->cols(),
                         batch->null_cols());
  batch->SetAllSelected(n);
  if (stats_ != nullptr) stats_->ObserveBatch(*batch);
  return Status::OK();
}

void ParallelScan::Close() {
  iter_.reset();
  if (stats_ != nullptr) {
    // Each fragment merges its own slice under the StatsFeedback mutex —
    // safe from worker threads, totals add up across the dop fragments.
    ctx_->stats_feedback()->MergeScan(*stats_);
    stats_.reset();
  }
}

}  // namespace microspec
