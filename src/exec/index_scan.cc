#include "exec/index_scan.h"

namespace microspec {

IndexScan::IndexScan(ExecContext* ctx, TableInfo* table, IndexInfo* index,
                     IndexKey prefix)
    : ctx_(ctx), table_(table), index_(index), prefix_(prefix) {
  for (const Column& c : table->schema().columns()) {
    meta_.push_back(ColMeta::FromColumn(c));
  }
}

Status IndexScan::Init() {
  deformer_ = ctx_->DeformerFor(table_);
  int natts = table_->schema().natts();
  values_buf_.assign(static_cast<size_t>(natts), 0);
  isnull_buf_ = std::make_unique<bool[]>(static_cast<size_t>(natts));
  tuple_buf_ = std::make_unique<char[]>(kPageSize);
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();
  tids_.clear();
  pos_ = 0;
  index_->btree->ScanPrefix(prefix_, [this](const IndexKey&, TupleId tid) {
    tids_.push_back(tid);
    return true;
  });
  return Status::OK();
}

Status IndexScan::Next(bool* has_row) {
  while (pos_ < tids_.size()) {
    TupleId tid = tids_[pos_++];
    uint32_t len = 0;
    Status st = table_->heap()->Fetch(tid, tuple_buf_.get(), kPageSize, &len);
    if (st.code() == StatusCode::kNotFound) continue;  // deleted since Init
    MICROSPEC_RETURN_NOT_OK(st);
    deformer_->Deform(tuple_buf_.get(), table_->schema().natts(),
                      values_buf_.data(), isnull_buf_.get());
    *has_row = true;
    return Status::OK();
  }
  *has_row = false;
  return Status::OK();
}

}  // namespace microspec
