#ifndef MICROSPEC_EXEC_SORT_H_
#define MICROSPEC_EXEC_SORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace microspec {

/// Sort key: output column ordinal + direction.
struct SortKey {
  int col;
  bool desc = false;
};

/// Full in-memory sort (materializes the child).
class Sort final : public Operator {
 public:
  Sort(ExecContext* ctx, OperatorPtr child, std::vector<SortKey> keys)
      : ctx_(ctx), child_(std::move(child)), keys_(std::move(keys)) {
    meta_ = child_->output_meta();
  }

  Status Init() override;
  Status Next(bool* has_row) override;
  void Close() override;

 private:
  struct MatRow {
    Datum* values;
    bool* isnull;
  };

  ExecContext* ctx_;
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  Arena arena_;
  std::vector<MatRow> rows_;
  size_t pos_ = 0;
  bool sorted_ = false;
  std::unique_ptr<bool[]> isnull_buf_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_SORT_H_
