#include "exec/stats_feedback.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "common/telemetry.h"
#include "exec/batch.h"
#include "expr/expr.h"

namespace microspec {

// ---------------------------------------------------------------------------
// DescribeExpr

namespace {

constexpr size_t kMaxDisplay = 160;

void AppendTrimmedString(std::string* out, const char* p, size_t len) {
  // char(n) values are blank-padded; trim for display.
  while (len > 0 && p[len - 1] == ' ') --len;
  out->push_back('\'');
  for (size_t i = 0; i < len && i < 32; ++i) {
    const char c = p[i];
    out->push_back((c == '\'' || static_cast<unsigned char>(c) < 0x20) ? '?'
                                                                       : c);
  }
  if (len > 32) *out += "...";
  out->push_back('\'');
}

void AppendDatum(std::string* out, Datum d, const ColMeta& meta) {
  char buf[32];
  switch (meta.type) {
    case TypeId::kBool:
      *out += DatumToBool(d) ? "true" : "false";
      return;
    case TypeId::kInt32:
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%" PRId64, DatumToInt64(d));
      *out += buf;
      return;
    case TypeId::kDate:
      std::snprintf(buf, sizeof(buf), "date(%" PRId64 ")", DatumToInt64(d));
      *out += buf;
      return;
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%g", DatumToFloat64(d));
      *out += buf;
      return;
    case TypeId::kChar:
      AppendTrimmedString(out, DatumToPointer(d),
                          static_cast<size_t>(meta.attlen));
      return;
    case TypeId::kVarchar: {
      const std::string_view v = VarlenaView(d);
      AppendTrimmedString(out, v.data(), v.size());
      return;
    }
  }
}

void Describe(const Expr& e, std::string* out) {
  if (out->size() > kMaxDisplay) return;  // bounded output for labels
  switch (e.kind()) {
    case ExprKind::kVar: {
      const auto& v = static_cast<const VarExpr&>(e);
      if (v.side() == RowSide::kInner) *out += "inner.";
      *out += "$" + std::to_string(v.attno());
      return;
    }
    case ExprKind::kConst: {
      const auto& c = static_cast<const ConstExpr&>(e);
      if (c.is_null_const()) {
        *out += "NULL";
      } else {
        AppendDatum(out, c.value(), c.meta());
      }
      return;
    }
    case ExprKind::kCmp: {
      const auto& c = static_cast<const CmpExpr&>(e);
      *out += '(';
      Describe(*c.lhs(), out);
      *out += ' ';
      *out += CmpOpName(c.op());
      *out += ' ';
      Describe(*c.rhs(), out);
      *out += ')';
      return;
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      static constexpr const char* kOps[] = {"+", "-", "*", "/"};
      *out += '(';
      Describe(*a.lhs(), out);
      *out += ' ';
      *out += kOps[static_cast<int>(a.op())];
      *out += ' ';
      Describe(*a.rhs(), out);
      *out += ')';
      return;
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      if (b.op() == BoolOp::kNot) {
        *out += "NOT ";
        if (!b.children().empty()) Describe(*b.children()[0], out);
        return;
      }
      const char* sep = b.op() == BoolOp::kAnd ? " AND " : " OR ";
      *out += '(';
      for (size_t i = 0; i < b.children().size(); ++i) {
        if (i != 0) *out += sep;
        Describe(*b.children()[i], out);
        if (out->size() > kMaxDisplay) break;
      }
      *out += ')';
      return;
    }
    case ExprKind::kLike: {
      const auto& l = static_cast<const LikeExpr&>(e);
      Describe(*l.input(), out);
      *out += l.negated() ? " NOT LIKE '" : " LIKE '";
      switch (l.mode()) {
        case LikeExpr::Mode::kExact: *out += l.needle(); break;
        case LikeExpr::Mode::kPrefix: *out += l.needle() + "%"; break;
        case LikeExpr::Mode::kSuffix: *out += "%" + l.needle(); break;
        case LikeExpr::Mode::kContains: *out += "%" + l.needle() + "%"; break;
      }
      *out += '\'';
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      Describe(*in.input(), out);
      *out += " IN (";
      for (size_t i = 0; i < in.items().size(); ++i) {
        if (i != 0) *out += ", ";
        AppendDatum(out, in.items()[i], in.item_meta());
        if (out->size() > kMaxDisplay) break;
      }
      *out += ')';
      return;
    }
  }
}

/// Hash of one non-null value, type-dispatched like DatumHashGeneric but
/// without the workops accounting — sketch work must not inflate the
/// engine's own work-operation metrics.
uint64_t SketchHash(Datum d, const ColMeta& meta) {
  switch (meta.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return HashInt64(DatumToInt64(d), 0x5157ULL);
    case TypeId::kFloat64:
      return HashInt64(static_cast<int64_t>(d), 0x5157ULL);
    case TypeId::kChar:
      return Hash64(DatumToPointer(d), static_cast<size_t>(meta.attlen),
                    0x5157ULL);
    case TypeId::kVarchar: {
      const char* p = DatumToPointer(d);
      return Hash64(VarlenaPayload(p), VarlenaPayloadSize(p), 0x5157ULL);
    }
  }
  return 0;
}

bool NumericType(TypeId t) {
  return t == TypeId::kInt32 || t == TypeId::kInt64 || t == TypeId::kDate ||
         t == TypeId::kFloat64;
}

double NumericValue(Datum d, TypeId t) {
  if (t == TypeId::kFloat64) return DatumToFloat64(d);
  return static_cast<double>(DatumToInt64(d));
}

}  // namespace

std::string DescribeExpr(const Expr& expr) {
  std::string out;
  Describe(expr, &out);
  if (out.size() > kMaxDisplay) {
    out.resize(kMaxDisplay);
    out += "...";
  }
  return out;
}

// ---------------------------------------------------------------------------
// ColumnSketch

void ColumnSketch::Observe(Datum d, bool isnull, const ColMeta& meta) {
  ++rows_;
  if (isnull) {
    ++nulls_;
    return;
  }
  const uint64_t h = SketchHash(d, meta);
  const uint32_t idx = static_cast<uint32_t>(h >> (64 - kRegisterBits));
  const uint64_t w = h << kRegisterBits;
  // Rank = leading zeros of the remaining bits + 1; all-zero remainder gets
  // the maximum rank for the 56-bit window.
  const uint8_t rank = static_cast<uint8_t>(
      w == 0 ? (64 - kRegisterBits + 1) : (__builtin_clzll(w) + 1));
  if (rank > regs_[idx]) regs_[idx] = rank;
  if (NumericType(meta.type)) {
    const double v = NumericValue(d, meta.type);
    if (!has_range_) {
      has_range_ = true;
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }
}

void ColumnSketch::Merge(const ColumnSketch& other) {
  rows_ += other.rows_;
  nulls_ += other.nulls_;
  for (int i = 0; i < kRegisters; ++i) {
    regs_[i] = std::max(regs_[i], other.regs_[i]);
  }
  if (other.has_range_) {
    if (!has_range_) {
      has_range_ = true;
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
}

double ColumnSketch::EstimateNdv() const {
  if (rows_ == nulls_) return 0;
  // Standard HyperLogLog estimate with the linear-counting correction for
  // small cardinalities (Flajolet et al. 2007).
  const double m = kRegisters;
  double sum = 0;
  int zeros = 0;
  for (int i = 0; i < kRegisters; ++i) {
    sum += std::ldexp(1.0, -regs_[i]);
    if (regs_[i] == 0) ++zeros;
  }
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / zeros);
  }
  return estimate;
}

// ---------------------------------------------------------------------------
// ScanStatsCollector

ScanStatsCollector::ScanStatsCollector(std::string relation,
                                       std::vector<std::string> columns,
                                       std::vector<ColMeta> metas)
    : relation_(std::move(relation)),
      columns_(std::move(columns)),
      metas_(std::move(metas)),
      sketches_(metas_.size()) {}

void ScanStatsCollector::ObserveRow(const Datum* values, const bool* isnull) {
  ++rows_;
  for (size_t c = 0; c < sketches_.size(); ++c) {
    sketches_[c].Observe(values[c], isnull[c], metas_[c]);
  }
}

void ScanStatsCollector::ObserveBatch(const RowBatch& batch) {
  const int nrows = batch.size();
  if (nrows <= 0) return;
  rows_ += static_cast<uint64_t>(nrows);
  const int ncols =
      std::min(batch.ncols(), static_cast<int>(sketches_.size()));
  for (int c = 0; c < ncols; ++c) {
    const Datum* vals = batch.col(c);
    const bool* nulls = batch.nulls(c);
    ColumnSketch& sketch = sketches_[static_cast<size_t>(c)];
    const ColMeta& meta = metas_[static_cast<size_t>(c)];
    for (int r = 0; r < nrows; ++r) {
      sketch.Observe(vals[r], nulls[r], meta);
    }
  }
}

// ---------------------------------------------------------------------------
// StatsFeedback

void StatsFeedback::RecordPredicate(const std::string& fingerprint,
                                    const std::string& display,
                                    uint64_t rows_in, uint64_t rows_out) {
  if (rows_in == 0 && rows_out == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PredicateStats& p = predicates_[fingerprint];
  if (p.display.empty()) p.display = display;
  p.rows_in += rows_in;
  p.rows_out += rows_out;
}

void StatsFeedback::RecordJoin(const std::string& fingerprint,
                               const std::string& display, uint64_t probe_rows,
                               uint64_t matches) {
  if (probe_rows == 0 && matches == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  JoinStats& j = joins_[fingerprint];
  if (j.display.empty()) j.display = display;
  j.probe_rows += probe_rows;
  j.matches += matches;
}

void StatsFeedback::MergeScan(const ScanStatsCollector& collector) {
  if (collector.rows() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  RelationStats& rel = relations_[collector.relation()];
  rel.rows += collector.rows();
  if (rel.columns.empty()) {
    rel.columns = collector.columns();
    rel.sketches = collector.sketches();
    return;
  }
  // Scans may fetch column prefixes of different lengths; merge the common
  // prefix and extend with any additional columns this scan observed.
  const size_t common = std::min(rel.sketches.size(),
                                 collector.sketches().size());
  for (size_t c = 0; c < common; ++c) {
    rel.sketches[c].Merge(collector.sketches()[c]);
  }
  for (size_t c = rel.sketches.size(); c < collector.sketches().size(); ++c) {
    rel.columns.push_back(collector.columns()[c]);
    rel.sketches.push_back(collector.sketches()[c]);
  }
}

std::string StatsFeedback::FingerprintLabel(const std::string& fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                Hash64(fingerprint.data(), fingerprint.size(), 0));
  return buf;
}

void StatsFeedback::FillSnapshot(telemetry::TelemetrySnapshot* snap) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [fp, p] : predicates_) {
    const std::map<std::string, std::string> labels = {
        {"fp", FingerprintLabel(fp)}, {"expr", p.display}, {"kind", "evp"}};
    snap->AddCounter("microspec_predicate_rows_in_total",
                     static_cast<double>(p.rows_in), labels);
    snap->AddCounter("microspec_predicate_rows_out_total",
                     static_cast<double>(p.rows_out), labels);
    if (p.rows_in > 0) {
      snap->AddGauge("microspec_predicate_selectivity",
                     static_cast<double>(p.rows_out) /
                         static_cast<double>(p.rows_in),
                     labels);
    }
  }
  for (const auto& [fp, j] : joins_) {
    const std::map<std::string, std::string> labels = {
        {"fp", FingerprintLabel(fp)}, {"keys", j.display}, {"kind", "evj"}};
    snap->AddCounter("microspec_join_probe_rows_total",
                     static_cast<double>(j.probe_rows), labels);
    snap->AddCounter("microspec_join_match_rows_total",
                     static_cast<double>(j.matches), labels);
    if (j.probe_rows > 0) {
      snap->AddGauge("microspec_join_selectivity",
                     static_cast<double>(j.matches) /
                         static_cast<double>(j.probe_rows),
                     labels);
    }
  }
  for (const auto& [name, rel] : relations_) {
    snap->AddCounter("microspec_scan_rows_total",
                     static_cast<double>(rel.rows), {{"relation", name}});
    for (size_t c = 0; c < rel.sketches.size(); ++c) {
      const ColumnSketch& s = rel.sketches[c];
      const std::map<std::string, std::string> labels = {
          {"relation", name}, {"column", rel.columns[c]}};
      snap->AddGauge("microspec_column_ndv", s.EstimateNdv(), labels);
      snap->AddGauge("microspec_column_nulls",
                     static_cast<double>(s.nulls()), labels);
      if (s.has_range()) {
        snap->AddGauge("microspec_column_min", s.min(), labels);
        snap->AddGauge("microspec_column_max", s.max(), labels);
      }
    }
  }
}

std::map<std::string, StatsFeedback::PredicateStats> StatsFeedback::predicates()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return predicates_;
}

std::map<std::string, StatsFeedback::JoinStats> StatsFeedback::joins() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return joins_;
}

std::map<std::string, StatsFeedback::RelationStats> StatsFeedback::relations()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return relations_;
}

void StatsFeedback::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  predicates_.clear();
  joins_.clear();
  relations_.clear();
}

}  // namespace microspec
