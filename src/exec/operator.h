#ifndef MICROSPEC_EXEC_OPERATOR_H_
#define MICROSPEC_EXEC_OPERATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/arena.h"
#include "common/status.h"
#include "common/tracing.h"
#include "exec/access.h"
#include "exec/batch.h"
#include "exec/row.h"

namespace microspec {

class StatsFeedback;

/// Join semantics supported by the join operators. These are the variants
/// the paper's EVJ bee enumerates ahead of time ("all possible combinations
/// of the join routines ... can be enumerated and compiled ahead of time").
enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti };

/// Per-session micro-specialization switches. Each bee routine is
/// independently toggleable, which is what makes the paper's additivity
/// experiment (Figure 7) expressible: {GCL}, {GCL,EVP}, {GCL,EVP,EVJ}.
struct SessionOptions {
  bool enable_gcl = false;         // relation bee: specialized deform
  bool enable_scl = false;         // relation bee: specialized form
  bool enable_evp = false;         // query bee: predicate evaluation
  bool enable_evj = false;         // query bee: join evaluation
  bool enable_tuple_bees = false;  // attribute-value specialization
  bool enable_agg_bee = false;     // extension: aggregation kernels (§VIII)

  static SessionOptions Stock() { return SessionOptions{}; }
  static SessionOptions AllBees() {
    SessionOptions o;
    o.enable_gcl = o.enable_scl = o.enable_evp = o.enable_evj =
        o.enable_tuple_bees = true;
    return o;
  }
  bool AnyEnabled() const {
    return enable_gcl || enable_scl || enable_evp || enable_evj ||
           enable_tuple_bees || enable_agg_bee;
  }
};

/// The bee module's face toward the executor (the Bee Caller seam). A null
/// implementation (stock engine) makes every factory return the generic
/// path. Implemented by bee::BeeModule.
class BeeHooks {
 public:
  virtual ~BeeHooks() = default;

  /// GCL routine for `table`, or nullptr to use the stock deform loop.
  virtual const TupleDeformer* DeformerFor(TableInfo* table,
                                           const SessionOptions& opts) = 0;

  /// SCL routine for `table`, or nullptr to use the stock form loop.
  virtual const TupleFormer* FormerFor(TableInfo* table,
                                       const SessionOptions& opts) = 0;

  /// EVP bee for `expr`, or nullptr when the shape is not specializable
  /// (the generic interpreter remains the fallback, as in the paper).
  /// `input_meta`, when non-null, is the operator's input row shape; the
  /// bee verifier range- and type-checks every clause's column reference
  /// against it before the bee may install.
  virtual std::unique_ptr<PredicateEvaluator> SpecializePredicate(
      const Expr& expr, const SessionOptions& opts,
      const std::vector<ColMeta>* input_meta) = 0;

  /// EVJ bee for the given join keys, or nullptr. `outer_width` and
  /// `inner_width` bound the key attribute numbers for verification; pass 0
  /// for a side whose row width is unknown at this call site.
  virtual std::unique_ptr<JoinKeyEvaluator> SpecializeJoinKeys(
      const std::vector<int>& outer_cols, const std::vector<int>& inner_cols,
      const std::vector<ColMeta>& key_meta, const SessionOptions& opts,
      int outer_width, int inner_width) = 0;
};

class QueryStats;
class ThreadPool;
class QueryBeeCache;

/// Per-query execution context: catalog access, the session's bee switches,
/// scratch memory, and factories that route through bees when enabled.
///
/// An ExecContext is single-threaded: the deformer/former memoization maps
/// and the arena are unsynchronized. Parallel plans therefore give each
/// worker its own context via MakeWorkerContext(), which also keeps bee tier
/// counters and deform-latency telemetry on the worker thread's shards
/// (merged on read, never contended on the hot path).
class ExecContext {
 public:
  ExecContext(Catalog* catalog, BeeHooks* bees, SessionOptions opts)
      : catalog_(catalog), bees_(bees), opts_(opts) {}
  MICROSPEC_DISALLOW_COPY_AND_MOVE(ExecContext);

  Catalog* catalog() { return catalog_; }
  Arena* arena() { return &arena_; }
  const SessionOptions& options() const { return opts_; }
  BeeHooks* bees() { return bees_; }

  /// EXPLAIN ANALYZE collector. When set, Plan wraps each freshly built
  /// operator in an OpProfiler (exec/analyze.h); when null — the default —
  /// plans are built exactly as before, so the uninstrumented path carries
  /// zero overhead (not even a branch per Next).
  void set_analyze(QueryStats* stats) { analyze_ = stats; }
  QueryStats* analyze() { return analyze_; }

  /// --- Parallel execution (morsel-driven; DESIGN.md "Parallel execution") ---
  /// Wired by Database::MakeContext when DatabaseOptions::dop > 1. With the
  /// default dop of 1 nothing here is set and Plan builds the exact serial
  /// operator tree this engine always built.
  void set_parallel(ThreadPool* executor, int dop, uint32_t morsel_pages) {
    executor_ = executor;
    dop_ = dop < 1 ? 1 : dop;
    morsel_pages_ = morsel_pages;
  }
  /// Degree of parallelism for plans built on this context; 1 == serial.
  int dop() const { return executor_ != nullptr ? dop_ : 1; }
  /// The lazily-started executor pool (null on serial contexts).
  ThreadPool* executor() { return executor_; }
  uint32_t morsel_pages() const { return morsel_pages_; }

  /// --- Batch execution (DESIGN.md "Batch execution") ---
  /// Wired by Database::MakeContext from DatabaseOptions::batch_rows. 0 (the
  /// default) keeps every operator on the scalar Next path — batch-aware
  /// parents only engage NextBatch when batch_rows() > 0 and the child
  /// subtree is BatchCapable(), so the default tree executes exactly as
  /// before this seam existed.
  void set_batch(int batch_rows, int gather_max_batches) {
    batch_rows_ = batch_rows < 0 ? 0 : batch_rows;
    gather_max_batches_ = gather_max_batches < 1 ? 1 : gather_max_batches;
  }
  /// RowBatch capacity for batch-driving parents; 0 == batching disabled.
  /// Values above kMaxTuplesPerPage are clamped: a page-granular scan can
  /// never fill more rows than one page holds.
  int batch_rows() const {
    return batch_rows_ > kMaxTuplesPerPage ? kMaxTuplesPerPage : batch_rows_;
  }
  /// Gather's bounded-queue capacity, in batches per worker.
  int gather_max_batches() const { return gather_max_batches_; }

  /// --- Shared bee economy (DESIGN.md "Server front door") ---
  /// When set (Database::MakeContext under `share_query_bees`, i.e. the
  /// server path), MakePredicate/MakeJoinKeys consult the process-wide
  /// QueryBeeCache: the first session to prepare a shape forges and
  /// verifies the bee, every later session — and every parallel fragment —
  /// reuses it with no re-specialization and no re-verification.
  void set_shared_bees(QueryBeeCache* cache) { shared_bees_ = cache; }
  QueryBeeCache* shared_bees() { return shared_bees_; }

  /// --- Tracing & workload feedback (DESIGN.md §10) ---
  /// The sampled query's trace context (null for unsampled queries — the
  /// overwhelmingly common case). Set per statement by the sqlfe driver or
  /// the server session, never by Database::MakeContext; operators test the
  /// pointer once per query (Init/Close), never per row.
  void set_trace(const trace::TraceContext& tc) { trace_ = tc; }
  const trace::TraceContext& trace() const { return trace_; }

  /// The shared workload-statistics sink (null unless
  /// DatabaseOptions::stats_feedback is on). Scans/filters/joins flush
  /// observed statistics into it on Close.
  void set_stats_feedback(StatsFeedback* stats) { stats_feedback_ = stats; }
  StatsFeedback* stats_feedback() { return stats_feedback_; }

  /// A fresh context for one parallel worker: same catalog, bee module,
  /// session switches, batch configuration and shared bee cache, but its
  /// own arena and memoization maps (and no executor — workers never build
  /// nested parallel plans). The worker context must not outlive this
  /// context's catalog/bee module.
  std::unique_ptr<ExecContext> MakeWorkerContext() {
    auto ctx = std::make_unique<ExecContext>(catalog_, bees_, opts_);
    ctx->set_batch(batch_rows_, gather_max_batches_);
    ctx->set_shared_bees(shared_bees_);
    ctx->set_trace(trace_);
    ctx->set_stats_feedback(stats_feedback_);
    return ctx;
  }

  /// Deformer for scans of `table`: the GCL bee when enabled, else stock.
  /// Resolution is memoized per context — OLTP point reads would otherwise
  /// pay the bee registry lookup on every tuple.
  const TupleDeformer* DeformerFor(TableInfo* table) {
    auto cached = deformer_cache_.find(table->id());
    if (cached != deformer_cache_.end()) return cached->second;
    const TupleDeformer* d = nullptr;
    if (bees_ != nullptr) d = bees_->DeformerFor(table, opts_);
    if (d == nullptr) {
      auto it = stock_deformers_
                    .emplace(table->id(),
                             std::make_unique<StockDeformer>(&table->schema()))
                    .first;
      d = it->second.get();
    }
    deformer_cache_.emplace(table->id(), d);
    return d;
  }

  /// Former for inserts into `table`: the SCL bee when enabled, else stock.
  const TupleFormer* FormerFor(TableInfo* table) {
    auto cached = former_cache_.find(table->id());
    if (cached != former_cache_.end()) return cached->second;
    const TupleFormer* f = nullptr;
    if (bees_ != nullptr) f = bees_->FormerFor(table, opts_);
    if (f == nullptr) {
      auto it = stock_formers_
                    .emplace(table->id(),
                             std::make_unique<StockFormer>(&table->schema()))
                    .first;
      f = it->second.get();
    }
    former_cache_.emplace(table->id(), f);
    return f;
  }

  /// Predicate evaluator: EVP bee when enabled, the shape qualifies, and
  /// the verifier accepts it against `input_meta` (the caller's input row
  /// shape, when known); else the generic interpreted tree. With a shared
  /// bee cache installed the forged bee is a process-wide artifact served
  /// to every session that prepares the same shape (see exec/shared_bees.h).
  std::unique_ptr<PredicateEvaluator> MakePredicate(
      ExprPtr expr, const std::vector<ColMeta>* input_meta = nullptr);

  /// Join-key evaluator: EVJ bee when enabled and verified against the
  /// given side widths (0 = width unknown, range check skipped), else
  /// generic. Shared-bee caching as in MakePredicate.
  std::unique_ptr<JoinKeyEvaluator> MakeJoinKeys(
      std::vector<int> outer_cols, std::vector<int> inner_cols,
      std::vector<ColMeta> key_meta, int outer_width = 0,
      int inner_width = 0);

 private:
  std::unique_ptr<PredicateEvaluator> MakePredicateImpl(
      ExprPtr expr, const std::vector<ColMeta>* input_meta);
  std::unique_ptr<JoinKeyEvaluator> MakeJoinKeysImpl(
      std::vector<int> outer_cols, std::vector<int> inner_cols,
      std::vector<ColMeta> key_meta, int outer_width, int inner_width);

  Catalog* catalog_;
  BeeHooks* bees_;
  SessionOptions opts_;
  QueryStats* analyze_ = nullptr;
  QueryBeeCache* shared_bees_ = nullptr;
  trace::TraceContext trace_;
  StatsFeedback* stats_feedback_ = nullptr;
  ThreadPool* executor_ = nullptr;
  int dop_ = 1;
  uint32_t morsel_pages_ = 0;  // 0 => kDefaultMorselPages
  int batch_rows_ = 0;         // 0 => batch execution disabled
  int gather_max_batches_ = 4;
  Arena arena_;
  std::unordered_map<TableId, std::unique_ptr<StockDeformer>> stock_deformers_;
  std::unordered_map<TableId, std::unique_ptr<StockFormer>> stock_formers_;
  std::unordered_map<TableId, const TupleDeformer*> deformer_cache_;
  std::unordered_map<TableId, const TupleFormer*> former_cache_;
};

class Operator;

/// The batch adapter: drains scalar Next() into `batch` (up to capacity),
/// deep-copying by-reference Datums into the batch arena — row i's pointers
/// die at row i+1's Next, so the copies are mandatory. This is both the
/// default NextBatch implementation and the explicit "batching off" path a
/// Gather uses so a batch_rows() == 0 run never dispatches to a real batch
/// implementation.
Status ScalarNextIntoBatch(Operator* op, RowBatch* batch);

/// Volcano-style physical operator: Init once, Next per row, Close once.
/// Output rows are exposed as parallel values()/isnull() arrays described by
/// output_meta().
///
/// Batch seam: NextBatch(RowBatch*) produces up to a batch of rows per call
/// (selected() == 0 signals end of stream). The default adapter wraps the
/// scalar Next, so every operator works under a batch-driving parent;
/// operators with a real column-at-a-time implementation (scans, Filter,
/// Project, Limit) override it and report BatchCapable() so parents only
/// batch-drive subtrees where batching is a win, never a copy tax.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Init() = 0;
  /// Produces the next row; sets *has_row=false at end of stream.
  virtual Status Next(bool* has_row) = 0;
  /// Produces the next batch; batch->selected() == 0 at end of stream.
  /// A caller must not interleave Next and NextBatch on the same operator
  /// between Init and end-of-stream.
  virtual Status NextBatch(RowBatch* batch) {
    return ScalarNextIntoBatch(this, batch);
  }
  virtual void Close() {}

  /// True when this operator — and, for pass-through operators, its whole
  /// child chain — implements NextBatch natively (no scalar adapter).
  virtual bool BatchCapable() const { return false; }

  const std::vector<ColMeta>& output_meta() const { return meta_; }
  const Datum* values() const { return values_; }
  const bool* isnull() const { return isnull_; }

 protected:
  std::vector<ColMeta> meta_;
  const Datum* values_ = nullptr;
  const bool* isnull_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` and returns the number of rows produced (runs Init/Close).
Result<uint64_t> CountRows(Operator* op);

/// Drains `op`, invoking fn(values, isnull) per row.
template <typename Fn>
Status ForEachRow(Operator* op, Fn&& fn) {
  MICROSPEC_RETURN_NOT_OK(op->Init());
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(op->Next(&has_row));
    if (!has_row) break;
    fn(op->values(), op->isnull());
  }
  op->Close();
  return Status::OK();
}

}  // namespace microspec

#endif  // MICROSPEC_EXEC_OPERATOR_H_
