#ifndef MICROSPEC_EXEC_PLAN_BUILDER_H_
#define MICROSPEC_EXEC_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/nested_loop_join.h"
#include "exec/operator.h"
#include "exec/sort.h"

namespace microspec {

/// Named aggregate / named expression helpers: initializer lists cannot
/// hold move-only types, so plans are written as
///   plan.GroupBy({"k"}, AggList(Ag(AggSpec::Sum(e), "s")));
///   plan.Select(SelList(Ex(expr, "name")));
inline std::pair<AggSpec, std::string> Ag(AggSpec spec, std::string name) {
  return {std::move(spec), std::move(name)};
}
inline std::pair<ExprPtr, std::string> Ex(ExprPtr expr, std::string name) {
  return {std::move(expr), std::move(name)};
}
template <typename... Ps>
std::vector<std::pair<AggSpec, std::string>> AggList(Ps&&... ps) {
  std::vector<std::pair<AggSpec, std::string>> v;
  v.reserve(sizeof...(ps));
  (v.push_back(std::forward<Ps>(ps)), ...);
  return v;
}
template <typename... Ps>
std::vector<std::pair<ExprPtr, std::string>> SelList(Ps&&... ps) {
  std::vector<std::pair<ExprPtr, std::string>> v;
  v.reserve(sizeof...(ps));
  (v.push_back(std::forward<Ps>(ps)), ...);
  return v;
}

/// A light-weight logical plan builder that tracks output column names, so
/// multi-join plans can reference columns by name instead of by fragile
/// positional arithmetic. This is the library's "planner-lite": callers
/// (benchmarks, examples, the SQL front end) compose scans, filters, joins,
/// aggregations, sorts and projections, then Take() the operator tree.
///
/// All bee seams remain in force: scans deform through GCL, filters go
/// through MakePredicate (EVP), hash joins through MakeJoinKeys (EVJ).
///
/// Parallelism: when the context's dop() > 1 a plan starts as dop per-worker
/// pipeline fragments fed by a shared MorselCursor. Per-row operators
/// (Filter) replicate across the fragments; pipeline breakers either merge
/// the fragments (GroupBy -> ParallelHashAggregate, Join's build side ->
/// SharedJoinBuild) or force a Gather (Sort, Project, Limit, LoopJoin,
/// Build). At dop() == 1 none of this machinery engages and the built tree
/// is byte-identical to the serial planner's.
class Plan {
 public:
  /// Sequential scan of all (or the first `natts`) columns.
  static Plan Scan(ExecContext* ctx, TableInfo* table, int natts = -1);

  /// Filters rows by `predicate`; Vars reference this plan's columns.
  Plan& Where(ExprPtr predicate);

  /// Hash equi-join. `keys` pairs (outer column name, inner column name).
  /// For kInner/kLeft the output is outer ++ inner columns; kSemi/kAnti keep
  /// the outer columns only. `residual` may reference outer columns as
  /// RowSide::kOuter and inner columns as RowSide::kInner.
  static Plan Join(Plan outer, Plan inner,
                   std::vector<std::pair<std::string, std::string>> keys,
                   JoinType type = JoinType::kInner,
                   ExprPtr residual = nullptr);

  /// Nested-loop join on an arbitrary predicate.
  static Plan LoopJoin(Plan outer, Plan inner, JoinType type,
                       ExprPtr predicate);

  /// Hash aggregation; output columns are the group columns (same names)
  /// followed by the named aggregates.
  Plan& GroupBy(const std::vector<std::string>& group_cols,
                std::vector<std::pair<AggSpec, std::string>> aggs);

  /// Projection to the named expressions.
  Plan& Select(std::vector<std::pair<ExprPtr, std::string>> exprs);

  Plan& OrderBy(const std::vector<std::pair<std::string, bool>>& keys);
  Plan& Take(uint64_t limit);

  /// Column ordinal by name (fatal if absent — plans are static).
  int col(const std::string& name) const;
  /// Non-fatal lookup: -1 when absent (used by the SQL binder).
  int TryCol(const std::string& name) const;
  ColMeta meta(const std::string& name) const;
  /// Var expression referencing this plan's column (outer side).
  ExprPtr var(const std::string& name) const;
  /// Var expression for use as a join residual's inner side.
  ExprPtr inner_var(const std::string& name) const;

  const std::vector<std::string>& names() const { return names_; }

  /// Releases the built operator tree.
  OperatorPtr Build() &&;

 private:
  Plan(ExecContext* ctx, OperatorPtr op, std::vector<std::string> names)
      : ctx_(ctx), op_(std::move(op)), names_(std::move(names)) {}

  /// True while the plan is dop parallel fragments (op_ is null).
  bool parallel() const { return !frags_.empty(); }

  /// Collapses parallel fragments into a single serial tree by inserting a
  /// Gather exchange; no-op for serial plans. Called by every operator that
  /// needs a single input stream, and by Build().
  void EnsureSerial();

  /// EXPLAIN ANALYZE seam: when ctx_->analyze() is set, registers a stats
  /// node labelled `label` (children = the wrapped inputs' node ids) and
  /// wraps op_ in an OpProfiler; otherwise leaves the tree untouched.
  void Instrument(std::string label, std::vector<int> children);

  /// Fragment flavor of Instrument: one stats node shared by all dop
  /// fragments, each wrapped in its own OpProfiler. The profilers accumulate
  /// locally on their worker threads and merge into the shared node on
  /// Close, so the node reports whole-operator totals (rows sum across
  /// workers; next_calls = rows + dop EOS probes).
  void InstrumentFragments(std::string label, std::vector<int> children);

  ExecContext* ctx_;
  OperatorPtr op_;
  std::vector<std::string> names_;

  /// Parallel pipeline state: fragment i runs on frag_ctxs_[i] (a worker
  /// ExecContext), and cursors_ holds the morsel cursors feeding the
  /// fragments' scan leaves (reset on rescans by the downstream breaker).
  std::vector<OperatorPtr> frags_;
  std::vector<std::unique_ptr<ExecContext>> frag_ctxs_;
  std::vector<std::shared_ptr<MorselCursor>> cursors_;

  /// This plan's current QueryStats node id (-1 when not collecting).
  int stats_id_ = -1;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_PLAN_BUILDER_H_
