#include "exec/sort.h"

#include <algorithm>

namespace microspec {

Status Sort::Init() {
  sorted_ = false;
  pos_ = 0;
  rows_.clear();
  arena_.Reset();
  return child_->Init();
}

Status Sort::Next(bool* has_row) {
  if (!sorted_) {
    const std::vector<ColMeta>& cm = meta_;
    size_t width = cm.size();
    bool child_has = false;
    for (;;) {
      MICROSPEC_RETURN_NOT_OK(child_->Next(&child_has));
      if (!child_has) break;
      MatRow row;
      row.values =
          static_cast<Datum*>(arena_.Allocate(sizeof(Datum) * width, 8));
      row.isnull = static_cast<bool*>(arena_.Allocate(width, 1));
      const Datum* v = child_->values();
      const bool* n = child_->isnull();
      for (size_t i = 0; i < width; ++i) {
        row.isnull[i] = n != nullptr && n[i];
        row.values[i] = row.isnull[i] ? 0 : CopyDatum(&arena_, v[i], cm[i]);
      }
      rows_.push_back(row);
    }
    child_->Close();

    std::sort(rows_.begin(), rows_.end(),
              [this, &cm](const MatRow& a, const MatRow& b) {
                for (const SortKey& k : keys_) {
                  size_t c = static_cast<size_t>(k.col);
                  bool an = a.isnull[c];
                  bool bn = b.isnull[c];
                  if (an != bn) return bn;  // NULLS LAST in either direction
                  if (an) continue;
                  int cmp = DatumCompareGeneric(a.values[c], b.values[c], cm[c]);
                  if (cmp != 0) return k.desc ? cmp > 0 : cmp < 0;
                }
                return false;
              });
    sorted_ = true;
  }
  if (pos_ >= rows_.size()) {
    *has_row = false;
    return Status::OK();
  }
  values_ = rows_[pos_].values;
  isnull_ = rows_[pos_].isnull;
  ++pos_;
  *has_row = true;
  return Status::OK();
}

void Sort::Close() {
  rows_.clear();
  arena_.Reset();
}

}  // namespace microspec
