#ifndef MICROSPEC_EXEC_ANALYZE_H_
#define MICROSPEC_EXEC_ANALYZE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/telemetry.h"
#include "exec/operator.h"

namespace microspec {

/// --- EXPLAIN ANALYZE --------------------------------------------------------
/// Per-operator execution statistics: rows produced, Next() calls, cumulative
/// wall time, and the work-op delta attributable to the operator's subtree.
/// Collection is decorator-based: Plan wraps each operator in an OpProfiler
/// only when ExecContext::analyze() is set, so an uninstrumented query runs
/// the exact same operator tree as before this feature existed.

class QueryStats {
 public:
  struct Node {
    std::string label;           // e.g. "HashJoin", "SeqScan(lineitem)"
    std::vector<int> children;   // node ids, in plan order
    uint64_t rows = 0;           // rows this operator produced
    uint64_t next_calls = 0;     // Next() invocations (rows + the EOS call)
    uint64_t time_ns = 0;        // wall time inside Init+Next, inclusive of
                                 // children (Volcano pulls nest the clocks)
    uint64_t work_ops = 0;       // work-op delta, likewise inclusive
  };

  /// Registers a plan node; `children` are ids returned by earlier calls.
  /// Plan construction is single-threaded, so AddNode takes no lock.
  int AddNode(std::string label, std::vector<int> children = {});

  /// The id the next AddNode call will return. Plan::Instrument registers
  /// trace operator spans keyed by node id before AddNode consumes it.
  int NextNodeId() const { return static_cast<int>(nodes_.size()); }

  /// Folds one profiler's accumulated counters into node `id`. Thread-safe:
  /// under parallelism each of a node's dop fragment profilers flushes its
  /// share here from its worker thread (on Close), so a fragment node shows
  /// the whole-operator totals instead of one worker's slice.
  void Merge(int id, uint64_t rows, uint64_t next_calls, uint64_t time_ns,
             uint64_t work_ops);

  Node* node(int id) { return &nodes_[static_cast<size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Indented plan tree, one operator per line:
  ///   HashAggregate rows=4 next=5 time=1.234ms work_ops=5678
  ///     HashJoin rows=100 ...
  /// Roots are nodes never referenced as a child. Times are inclusive of
  /// children, matching PostgreSQL's EXPLAIN ANALYZE convention.
  std::string ToString() const;

  /// The ToString() tree as lines (sql_shell returns one row per line).
  std::vector<std::string> ToLines() const;

 private:
  std::vector<Node> nodes_;
  std::mutex merge_mu_;  // guards the counter fields during Merge
};

/// Measuring decorator: forwards Init/Next/Close to `child`, accumulating
/// wall time and work-op deltas locally and flushing them into its
/// QueryStats node on Close. Local accumulation (rather than mutating the
/// shared node per call) keeps the hot path write-free of shared state, so
/// the dop fragment profilers that share one node id under parallel
/// execution never race: each flushes once, through QueryStats::Merge, from
/// whichever thread ran the fragment. The child's output row is re-exposed
/// as this operator's own, so parents are none the wiser.
class OpProfiler final : public Operator {
 public:
  OpProfiler(OperatorPtr child, QueryStats* stats, int node_id)
      : child_(std::move(child)), stats_(stats), node_id_(node_id) {
    meta_ = child_->output_meta();
  }

  ~OpProfiler() override { Flush(); }

  /// Attaches an operator span of a sampled query's trace (DESIGN.md §10):
  /// OpStart on first Init, OpEnd with the accumulated rows/work-ops on
  /// Flush. Fragment profilers get per-fragment spans whose windows fold
  /// into the shared operator span inside Trace.
  void set_trace(trace::Trace* t, uint32_t span) {
    trace_ = t;
    trace_span_ = span;
  }

  Status Init() override {
    if (MICROSPEC_UNLIKELY(trace_ != nullptr)) trace_->OpStart(trace_span_);
    const uint64_t t0 = telemetry::NowNs();
    const uint64_t w0 = workops::Read();
    Status st = child_->Init();
    time_local_ += telemetry::NowNs() - t0;
    work_local_ += workops::Read() - w0;
    // Some operators (Sort) finalize meta in their ctor, others by Init.
    meta_ = child_->output_meta();
    return st;
  }

  Status Next(bool* has_row) override {
    const uint64_t t0 = telemetry::NowNs();
    const uint64_t w0 = workops::Read();
    Status st = child_->Next(has_row);
    time_local_ += telemetry::NowNs() - t0;
    work_local_ += workops::Read() - w0;
    ++next_local_;
    if (st.ok() && *has_row) {
      ++rows_local_;
      values_ = child_->values();
      isnull_ = child_->isnull();
    }
    return st;
  }

  /// Forwarded so an instrumented plan keeps its real batch implementations
  /// (and BatchCapable signal) — otherwise EXPLAIN ANALYZE would silently
  /// degrade every batch-driven subtree to the scalar adapter.
  Status NextBatch(RowBatch* batch) override {
    const uint64_t t0 = telemetry::NowNs();
    const uint64_t w0 = workops::Read();
    Status st = child_->NextBatch(batch);
    time_local_ += telemetry::NowNs() - t0;
    work_local_ += workops::Read() - w0;
    ++next_local_;
    if (st.ok()) rows_local_ += static_cast<uint64_t>(batch->selected());
    return st;
  }

  bool BatchCapable() const override { return child_->BatchCapable(); }

  void Close() override {
    child_->Close();
    Flush();
  }

 private:
  void Flush() {
    if (rows_local_ == 0 && next_local_ == 0 && time_local_ == 0 &&
        work_local_ == 0) {
      return;
    }
    stats_->Merge(node_id_, rows_local_, next_local_, time_local_,
                  work_local_);
    if (trace_ != nullptr) {
      trace_->OpEnd(trace_span_, rows_local_, work_local_);
    }
    rows_local_ = next_local_ = time_local_ = work_local_ = 0;
  }

  OperatorPtr child_;
  QueryStats* stats_;
  int node_id_;
  trace::Trace* trace_ = nullptr;
  uint32_t trace_span_ = 0;
  uint64_t rows_local_ = 0;
  uint64_t next_local_ = 0;
  uint64_t time_local_ = 0;
  uint64_t work_local_ = 0;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_ANALYZE_H_
