#ifndef MICROSPEC_EXEC_ANALYZE_H_
#define MICROSPEC_EXEC_ANALYZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/telemetry.h"
#include "exec/operator.h"

namespace microspec {

/// --- EXPLAIN ANALYZE --------------------------------------------------------
/// Per-operator execution statistics: rows produced, Next() calls, cumulative
/// wall time, and the work-op delta attributable to the operator's subtree.
/// Collection is decorator-based: Plan wraps each operator in an OpProfiler
/// only when ExecContext::analyze() is set, so an uninstrumented query runs
/// the exact same operator tree as before this feature existed.

class QueryStats {
 public:
  struct Node {
    std::string label;           // e.g. "HashJoin", "SeqScan(lineitem)"
    std::vector<int> children;   // node ids, in plan order
    uint64_t rows = 0;           // rows this operator produced
    uint64_t next_calls = 0;     // Next() invocations (rows + the EOS call)
    uint64_t time_ns = 0;        // wall time inside Init+Next, inclusive of
                                 // children (Volcano pulls nest the clocks)
    uint64_t work_ops = 0;       // work-op delta, likewise inclusive
  };

  /// Registers a plan node; `children` are ids returned by earlier calls.
  int AddNode(std::string label, std::vector<int> children = {});

  Node* node(int id) { return &nodes_[static_cast<size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Indented plan tree, one operator per line:
  ///   HashAggregate rows=4 next=5 time=1.234ms work_ops=5678
  ///     HashJoin rows=100 ...
  /// Roots are nodes never referenced as a child. Times are inclusive of
  /// children, matching PostgreSQL's EXPLAIN ANALYZE convention.
  std::string ToString() const;

  /// The ToString() tree as lines (sql_shell returns one row per line).
  std::vector<std::string> ToLines() const;

 private:
  std::vector<Node> nodes_;
};

/// Measuring decorator: forwards Init/Next/Close to `child`, accumulating
/// wall time and work-op deltas into its QueryStats node. The child's output
/// row is re-exposed as this operator's own, so parents are none the wiser.
class OpProfiler final : public Operator {
 public:
  OpProfiler(OperatorPtr child, QueryStats* stats, int node_id)
      : child_(std::move(child)), stats_(stats), node_id_(node_id) {
    meta_ = child_->output_meta();
  }

  Status Init() override {
    const uint64_t t0 = telemetry::NowNs();
    const uint64_t w0 = workops::Read();
    Status st = child_->Init();
    QueryStats::Node* n = stats_->node(node_id_);
    n->time_ns += telemetry::NowNs() - t0;
    n->work_ops += workops::Read() - w0;
    // Some operators (Sort) finalize meta in their ctor, others by Init.
    meta_ = child_->output_meta();
    return st;
  }

  Status Next(bool* has_row) override {
    const uint64_t t0 = telemetry::NowNs();
    const uint64_t w0 = workops::Read();
    Status st = child_->Next(has_row);
    QueryStats::Node* n = stats_->node(node_id_);
    n->time_ns += telemetry::NowNs() - t0;
    n->work_ops += workops::Read() - w0;
    ++n->next_calls;
    if (st.ok() && *has_row) {
      ++n->rows;
      values_ = child_->values();
      isnull_ = child_->isnull();
    }
    return st;
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  QueryStats* stats_;
  int node_id_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_ANALYZE_H_
