#ifndef MICROSPEC_EXEC_INDEX_SCAN_H_
#define MICROSPEC_EXEC_INDEX_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "index/btree.h"
#include "storage/page.h"

namespace microspec {

/// Index scan: fetches the tuples whose index key begins with `prefix`
/// (point lookup when the prefix is a full key). Each fetched tuple is
/// deformed through the session's TupleDeformer, so relation/tuple bees
/// accelerate OLTP point accesses exactly as they do sequential scans —
/// the mechanism behind the TPC-C gains in Section VI-C.
class IndexScan final : public Operator {
 public:
  IndexScan(ExecContext* ctx, TableInfo* table, IndexInfo* index,
            IndexKey prefix);

  Status Init() override;
  Status Next(bool* has_row) override;

 private:
  ExecContext* ctx_;
  TableInfo* table_;
  IndexInfo* index_;
  IndexKey prefix_;
  const TupleDeformer* deformer_ = nullptr;
  std::vector<TupleId> tids_;
  size_t pos_ = 0;
  std::vector<Datum> values_buf_;
  std::unique_ptr<bool[]> isnull_buf_;
  std::unique_ptr<char[]> tuple_buf_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_INDEX_SCAN_H_
