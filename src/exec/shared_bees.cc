#include "exec/shared_bees.h"

#include <cstdio>

#include "common/hash.h"
#include "common/telemetry.h"

namespace microspec {

namespace {

/// Binary, self-delimiting serialization: every field is either fixed-width
/// or length-prefixed, so distinct trees can never serialize identically.

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendBytes(std::string* out, const void* p, size_t n) {
  AppendU32(out, static_cast<uint32_t>(n));
  out->append(static_cast<const char*>(p), n);
}

void AppendMeta(std::string* out, const ColMeta& m) {
  out->push_back(static_cast<char>(m.type));
  AppendU32(out, static_cast<uint32_t>(m.attlen));
}

/// The value bytes of a constant Datum of type `meta` — byref payloads are
/// serialized by content, so equal-looking pointers to different bytes (and
/// vice versa) fingerprint correctly.
void AppendDatum(std::string* out, Datum d, const ColMeta& meta) {
  switch (meta.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kFloat64:
      AppendU64(out, static_cast<uint64_t>(d));
      return;
    case TypeId::kChar:
      AppendBytes(out, DatumToPointer(d), static_cast<size_t>(meta.attlen));
      return;
    case TypeId::kVarchar: {
      std::string_view sv = VarlenaView(d);
      AppendBytes(out, sv.data(), sv.size());
      return;
    }
  }
}

void AppendExpr(std::string* out, const Expr& e) {
  out->push_back(static_cast<char>(e.kind()));
  switch (e.kind()) {
    case ExprKind::kVar: {
      const auto& v = static_cast<const VarExpr&>(e);
      out->push_back(static_cast<char>(v.side()));
      AppendU32(out, static_cast<uint32_t>(v.attno()));
      AppendMeta(out, v.meta());
      return;
    }
    case ExprKind::kConst: {
      const auto& c = static_cast<const ConstExpr&>(e);
      AppendMeta(out, c.meta());
      out->push_back(c.is_null_const() ? 1 : 0);
      if (!c.is_null_const()) AppendDatum(out, c.value(), c.meta());
      return;
    }
    case ExprKind::kCmp: {
      const auto& c = static_cast<const CmpExpr&>(e);
      out->push_back(static_cast<char>(c.op()));
      AppendExpr(out, *c.lhs());
      AppendExpr(out, *c.rhs());
      return;
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      out->push_back(static_cast<char>(a.op()));
      AppendExpr(out, *a.lhs());
      AppendExpr(out, *a.rhs());
      return;
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      out->push_back(static_cast<char>(b.op()));
      AppendU32(out, static_cast<uint32_t>(b.children().size()));
      for (const ExprPtr& c : b.children()) AppendExpr(out, *c);
      return;
    }
    case ExprKind::kLike: {
      const auto& l = static_cast<const LikeExpr&>(e);
      out->push_back(static_cast<char>(l.mode()));
      out->push_back(l.negated() ? 1 : 0);
      AppendBytes(out, l.needle().data(), l.needle().size());
      AppendExpr(out, *l.input());
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      AppendMeta(out, in.item_meta());
      AppendU32(out, static_cast<uint32_t>(in.items().size()));
      for (Datum d : in.items()) AppendDatum(out, d, in.item_meta());
      AppendExpr(out, *in.input());
      return;
    }
  }
}

void AppendMetaList(std::string* out, const std::vector<ColMeta>* meta) {
  if (meta == nullptr) {
    AppendU32(out, 0xFFFFFFFFu);
    return;
  }
  AppendU32(out, static_cast<uint32_t>(meta->size()));
  for (const ColMeta& m : *meta) AppendMeta(out, m);
}

/// Short printable handle for the forge trace's fixed-width relation field:
/// "evp:" / "evj:" plus the key hash in hex.
std::string TraceName(const char* prefix, const std::string& key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%016llx", prefix,
                static_cast<unsigned long long>(Hash64(key.data(), key.size())));
  return buf;
}

telemetry::Counter* CacheHits() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_query_bee_cache_hits_total");
  return c;
}

telemetry::Counter* CacheMisses() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_query_bee_cache_misses_total");
  return c;
}

/// Shared find-or-build over one of the two entry maps. The map mutex is
/// held only for the lookup; the (possibly expensive) builder runs under the
/// entry's own once-flag so concurrent sessions preparing the same shape
/// block on each other, never on unrelated keys.
template <typename Evaluator, typename Map, typename Builder>
std::shared_ptr<Evaluator> GetOrBuild(std::mutex* mutex, Map* map,
                                      uint64_t* hits, uint64_t* misses,
                                      const std::string& key,
                                      const Builder& build,
                                      const char* trace_prefix) {
  std::shared_ptr<typename Map::mapped_type::element_type> entry;
  bool created = false;
  {
    std::lock_guard<std::mutex> guard(*mutex);
    auto& slot = (*map)[key];
    if (slot == nullptr) {
      slot = std::make_shared<typename Map::mapped_type::element_type>();
      created = true;
    }
    entry = slot;
    if (created) {
      ++*misses;
    } else {
      ++*hits;
    }
  }
  if (created) {
    CacheMisses()->Add(1);
  } else {
    CacheHits()->Add(1);
  }
  std::call_once(entry->once, [&] {
    telemetry::EventTrace* trace = telemetry::Registry::Global().forge_trace();
    std::string name = TraceName(trace_prefix, key);
    trace->Record(telemetry::ForgeEventKind::kQueued, name);
    uint64_t t0 = telemetry::NowNs();
    std::unique_ptr<Evaluator> bee = build();
    if (bee != nullptr) {
      entry->bee = std::shared_ptr<Evaluator>(std::move(bee));
      trace->Record(telemetry::ForgeEventKind::kSucceeded, name,
                    telemetry::NowNs() - t0);
    } else {
      trace->Record(telemetry::ForgeEventKind::kCancelled, name,
                    telemetry::NowNs() - t0, "not specializable");
    }
  });
  return entry->bee;
}

}  // namespace

std::string ExprFingerprint(const Expr& expr,
                            const std::vector<ColMeta>* input_meta) {
  std::string out = "evp|";
  AppendMetaList(&out, input_meta);
  AppendExpr(&out, expr);
  return out;
}

std::string JoinKeysFingerprint(const std::vector<int>& outer_cols,
                                const std::vector<int>& inner_cols,
                                const std::vector<ColMeta>& key_meta,
                                int outer_width, int inner_width) {
  std::string out = "evj|";
  AppendU32(&out, static_cast<uint32_t>(outer_width));
  AppendU32(&out, static_cast<uint32_t>(inner_width));
  AppendU32(&out, static_cast<uint32_t>(outer_cols.size()));
  for (size_t i = 0; i < outer_cols.size(); ++i) {
    AppendU32(&out, static_cast<uint32_t>(outer_cols[i]));
    AppendU32(&out, static_cast<uint32_t>(inner_cols[i]));
    AppendMeta(&out, key_meta[i]);
  }
  return out;
}

std::shared_ptr<PredicateEvaluator> QueryBeeCache::GetOrBuildPredicate(
    const std::string& key, const PredicateBuilder& build) {
  return GetOrBuild<PredicateEvaluator>(&mutex_, &predicates_, &hits_,
                                        &misses_, key, build, "evp:");
}

std::shared_ptr<JoinKeyEvaluator> QueryBeeCache::GetOrBuildJoinKeys(
    const std::string& key, const JoinKeysBuilder& build) {
  return GetOrBuild<JoinKeyEvaluator>(&mutex_, &join_keys_, &hits_, &misses_,
                                      key, build, "evj:");
}

void QueryBeeCache::Invalidate() {
  std::lock_guard<std::mutex> guard(mutex_);
  predicates_.clear();
  join_keys_.clear();
}

QueryBeeCache::Stats QueryBeeCache::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = predicates_.size() + join_keys_.size();
  return s;
}

}  // namespace microspec
