#include "exec/analyze.h"

#include <cstdio>

namespace microspec {

namespace {

std::string FormatTimeNs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

int QueryStats::AddNode(std::string label, std::vector<int> children) {
  Node n;
  n.label = std::move(label);
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void QueryStats::Merge(int id, uint64_t rows, uint64_t next_calls,
                       uint64_t time_ns, uint64_t work_ops) {
  std::lock_guard<std::mutex> guard(merge_mu_);
  Node* n = &nodes_[static_cast<size_t>(id)];
  n->rows += rows;
  n->next_calls += next_calls;
  n->time_ns += time_ns;
  n->work_ops += work_ops;
}

std::vector<std::string> QueryStats::ToLines() const {
  std::vector<bool> is_child(nodes_.size(), false);
  for (const Node& n : nodes_) {
    for (int c : n.children) is_child[static_cast<size_t>(c)] = true;
  }
  std::vector<std::string> lines;
  // Recursive lambda: emit a node, then its children indented one level.
  auto emit = [&](auto&& self, int id, int depth) -> void {
    const Node& n = nodes_[static_cast<size_t>(id)];
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += n.label + " rows=" + std::to_string(n.rows) +
            " next=" + std::to_string(n.next_calls) +
            " time=" + FormatTimeNs(n.time_ns) +
            " work_ops=" + std::to_string(n.work_ops);
    lines.push_back(std::move(line));
    for (int c : n.children) self(self, c, depth + 1);
  };
  // Roots in registration order; a plan registers leaves first, so the last
  // root is the plan's top — still emit every root for robustness.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!is_child[i]) emit(emit, static_cast<int>(i), 0);
  }
  return lines;
}

std::string QueryStats::ToString() const {
  std::string out;
  for (const std::string& line : ToLines()) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace microspec
