#include "exec/parallel.h"

#include "common/telemetry.h"
#include "common/tracing.h"

namespace microspec {

// --- Gather -----------------------------------------------------------------

Gather::Gather(ExecContext* ctx, std::vector<OperatorPtr> workers,
               std::vector<std::unique_ptr<ExecContext>> worker_ctxs,
               std::vector<std::shared_ptr<MorselCursor>> cursors)
    : ctx_(ctx),
      workers_(std::move(workers)),
      worker_ctxs_(std::move(worker_ctxs)),
      cursors_(std::move(cursors)) {
  MICROSPEC_CHECK(!workers_.empty());
  meta_ = workers_[0]->output_meta();
  width_ = meta_.size();
  row_values_.assign(width_, 0);
  row_isnull_ = std::make_unique<bool[]>(width_ + 1);
}

Gather::~Gather() { StopWorkers(); }

Status Gather::Init() {
  StopWorkers();  // rescan: quiesce any previous run first
  cur_.reset();
  cur_sel_ = 0;
  worker_status_ = Status::OK();
  cancelled_.store(false, std::memory_order_release);
  for (const auto& c : cursors_) c->Reset();
  inline_mode_ =
      ctx_->executor() == nullptr || ThreadPool::OnWorkerThread();
  inline_cur_ = 0;
  inline_open_ = false;
  if (inline_mode_) return Status::OK();
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.clear();
    max_queue_ =
        workers_.size() * static_cast<size_t>(ctx_->gather_max_batches());
    active_ = workers_.size();
    started_ = true;
  }
  // Producers may block mid-task on the bounded queue; reserve pool
  // capacity so they can all hold threads while parked without starving a
  // sibling exchange's workers (see ThreadPool::Reserve).
  ctx_->executor()->Reserve(static_cast<int>(workers_.size()));
  for (size_t i = 0; i < workers_.size(); ++i) {
    ctx_->executor()->Submit([this, i] { WorkerMain(i); });
  }
  return Status::OK();
}

void Gather::WorkerMain(size_t i) {
  // Install the sampled query's trace (if any) on this worker thread so
  // shared stall sites — buffer-pool reads, the bounded queue below — can
  // attribute their waits. No-op (one TLS store) for unsampled queries.
  const trace::TraceContext wtc = worker_ctxs_[i]->trace();
  trace::ThreadTraceScope trace_scope(wtc.trace, wtc.parent);
  Operator* op = workers_[i].get();
  Status st = op->Init();
  if (st.ok()) {
    // With batching on, each hand-off batch is the fragment's real NextBatch
    // output (page-granular at a scan leaf, the page pin riding inside).
    // With batching off, the scalar adapter deep-copies kScalarBatchRows
    // rows per batch — the explicit ScalarNextIntoBatch call (not the
    // virtual) guarantees batch-off runs never enter a batch implementation.
    const int cap = ctx_->batch_rows();
    const bool use_batch = cap > 0;
    auto batch = std::make_unique<RowBatch>(static_cast<int>(width_),
                                            use_batch ? cap : kScalarBatchRows);
    while (!cancelled_.load(std::memory_order_acquire)) {
      st = use_batch ? op->NextBatch(batch.get())
                     : ScalarNextIntoBatch(op, batch.get());
      if (!st.ok() || batch->selected() == 0) break;
      // The scalar adapter only under-fills on end-of-stream, so a partial
      // batch is the fragment's last — hand it off and stop without paying
      // one more Next() after EOS. (A real NextBatch has no such guarantee:
      // a Filter can legally return a partial batch mid-stream.)
      const bool last = !use_batch && batch->selected() < batch->capacity();
      bool dropped = false;
      {
        std::unique_lock<std::mutex> l(mu_);
        // Time the producer-side stall only when (a) this is a traced query
        // and (b) the queue is actually full — the common uncontended pass
        // pays one TLS null test.
        uint64_t wait_start = 0;
        if (queue_.size() >= max_queue_ && trace::ThreadTraceActive()) {
          wait_start = telemetry::NowNs();
        }
        space_.wait(l, [&] {
          return queue_.size() < max_queue_ ||
                 cancelled_.load(std::memory_order_relaxed);
        });
        if (wait_start != 0) {
          trace::RecordWait(trace::WaitKind::kGatherQueue, wait_start,
                            telemetry::NowNs());
        }
        if (cancelled_.load(std::memory_order_relaxed)) {
          dropped = true;
        } else {
          queue_.push_back(std::move(batch));
          ready_.notify_one();
        }
      }
      if (dropped || last) break;
      batch = std::make_unique<RowBatch>(static_cast<int>(width_),
                                         use_batch ? cap : kScalarBatchRows);
    }
    batch.reset();  // before Close: a scan batch's pin references the file
    op->Close();    // releases the fragment's pinned pages
  }
  // Final bookkeeping and notification happen under the lock: once active_
  // hits zero a waiter may destroy this operator, so nothing — including the
  // condition variables — may be touched after the lock is released.
  std::lock_guard<std::mutex> l(mu_);
  if (!st.ok() && worker_status_.ok()) worker_status_ = st;
  --active_;
  ready_.notify_all();
  idle_.notify_all();
}

Status Gather::Next(bool* has_row) {
  if (inline_mode_) {
    for (;;) {
      if (!inline_open_) {
        if (inline_cur_ >= workers_.size()) {
          *has_row = false;
          return Status::OK();
        }
        MICROSPEC_RETURN_NOT_OK(workers_[inline_cur_]->Init());
        inline_open_ = true;
      }
      MICROSPEC_RETURN_NOT_OK(workers_[inline_cur_]->Next(has_row));
      if (*has_row) {
        values_ = workers_[inline_cur_]->values();
        isnull_ = workers_[inline_cur_]->isnull();
        return Status::OK();
      }
      workers_[inline_cur_]->Close();
      inline_open_ = false;
      ++inline_cur_;
    }
  }
  for (;;) {
    if (cur_ != nullptr && cur_sel_ < cur_->selected()) {
      // Gather the selected row into the consumer's row-major scratch: the
      // batch's column data (and any page pin backing pointer Datums) stays
      // alive in cur_ until the next batch replaces it.
      cur_->GatherRow(cur_->sel()[cur_sel_], row_values_.data(),
                      row_isnull_.get());
      values_ = row_values_.data();
      isnull_ = row_isnull_.get();
      ++cur_sel_;
      *has_row = true;
      return Status::OK();
    }
    std::unique_lock<std::mutex> l(mu_);
    // Consumer-side stall: the drive thread waiting on worker output.
    uint64_t wait_start = 0;
    if (queue_.empty() && active_ != 0 && trace::ThreadTraceActive()) {
      wait_start = telemetry::NowNs();
    }
    ready_.wait(l, [&] { return !queue_.empty() || active_ == 0; });
    if (wait_start != 0) {
      trace::RecordWait(trace::WaitKind::kGatherQueue, wait_start,
                        telemetry::NowNs());
    }
    if (!queue_.empty()) {
      cur_ = std::move(queue_.front());
      queue_.pop_front();
      cur_sel_ = 0;
      space_.notify_one();  // a producer may be blocked on the bound
      continue;
    }
    *has_row = false;
    return worker_status_;
  }
}

void Gather::StopWorkers() {
  {
    std::unique_lock<std::mutex> l(mu_);
    if (!started_) return;
    cancelled_.store(true, std::memory_order_release);
    space_.notify_all();  // wake producers blocked on the full queue
    idle_.wait(l, [&] { return active_ == 0; });
    queue_.clear();  // releases any page pins the batches carry
    started_ = false;
  }
  ctx_->executor()->Release(static_cast<int>(workers_.size()));
}

void Gather::Close() {
  if (inline_mode_) {
    if (inline_open_) {
      workers_[inline_cur_]->Close();
      inline_open_ = false;
    }
    return;
  }
  StopWorkers();
  cur_.reset();
}

// --- SharedJoinBuild --------------------------------------------------------

SharedJoinBuild::SharedJoinBuild(
    std::vector<OperatorPtr> partitions,
    std::vector<std::unique_ptr<ExecContext>> partition_ctxs,
    std::vector<std::shared_ptr<MorselCursor>> cursors,
    std::vector<int> outer_keys, std::vector<int> inner_keys,
    std::vector<ColMeta> key_meta, std::vector<ColMeta> inner_meta)
    : partition_ops_(std::move(partitions)),
      partition_ctxs_(std::move(partition_ctxs)),
      cursors_(std::move(cursors)),
      outer_keys_(std::move(outer_keys)),
      inner_keys_(std::move(inner_keys)),
      key_meta_(std::move(key_meta)),
      inner_meta_(std::move(inner_meta)),
      partials_(partition_ops_.size()) {
  MICROSPEC_CHECK(partition_ops_.size() == partition_ctxs_.size());
}

Status SharedJoinBuild::DrainPartition(size_t i) {
  Partition& p = partials_[i];
  Operator* op = partition_ops_[i].get();
  // Each partition hashes through its own key evaluator (same EVJ/generic
  // decision as the probes — deterministic for a given key list), created
  // from the partition's worker context on the draining thread.
  std::unique_ptr<JoinKeyEvaluator> keys = partition_ctxs_[i]->MakeJoinKeys(
      outer_keys_, inner_keys_, key_meta_,
      /*outer_width=*/0,  // the probe side's width is unknown while building
      static_cast<int>(inner_meta_.size()));
  const size_t width = inner_meta_.size();
  MICROSPEC_RETURN_NOT_OK(op->Init());
  Status st;
  bool has_row = false;
  for (;;) {
    st = op->Next(&has_row);
    if (!st.ok() || !has_row) break;
    auto* row = static_cast<JoinBuildRow*>(
        p.arena.Allocate(sizeof(JoinBuildRow), alignof(JoinBuildRow)));
    row->values =
        static_cast<Datum*>(p.arena.Allocate(sizeof(Datum) * width, 8));
    row->isnull = static_cast<bool*>(p.arena.Allocate(width, 1));
    const Datum* v = op->values();
    const bool* n = op->isnull();
    for (size_t c = 0; c < width; ++c) {
      row->isnull[c] = n != nullptr && n[c];
      row->values[c] =
          row->isnull[c] ? 0 : CopyDatum(&p.arena, v[c], inner_meta_[c]);
    }
    row->hash = keys->HashInner(row->values, row->isnull);
    p.rows.push_back(row);
  }
  op->Close();
  return st;
}

void SharedJoinBuild::MergeLocked() {
  size_t total = 0;
  for (const Partition& p : partials_) total += p.rows.size();
  size_t nbuckets = 16;
  while (nbuckets < total * 2) nbuckets <<= 1;
  buckets_.assign(nbuckets, nullptr);
  bucket_mask_ = nbuckets - 1;
  for (Partition& p : partials_) {
    for (JoinBuildRow* row : p.rows) {
      size_t b = row->hash & bucket_mask_;
      row->next = buckets_[b];
      buckets_[b] = row;
    }
    p.rows.clear();
    p.rows.shrink_to_fit();
  }
}

Status SharedJoinBuild::EnsureBuilt() {
  {
    std::lock_guard<std::mutex> l(mutex_);
    if (built_) return status_;
  }
  // Work-steal undrained partitions; never wait for a pool slot.
  for (;;) {
    size_t i = next_partition_.fetch_add(1, std::memory_order_relaxed);
    if (i >= partition_ops_.size()) break;
    Status st = DrainPartition(i);
    std::lock_guard<std::mutex> l(mutex_);
    if (!st.ok() && status_.ok()) status_ = st;
    ++drained_;
  }
  std::unique_lock<std::mutex> l(mutex_);
  if (!built_ && drained_ == partition_ops_.size()) {
    if (status_.ok()) MergeLocked();
    built_ = true;
    built_cv_.notify_all();
  } else {
    built_cv_.wait(l, [&] { return built_; });
  }
  return status_;
}

// --- ParallelHashAggregate --------------------------------------------------

ParallelHashAggregate::ParallelHashAggregate(
    ExecContext* ctx, std::vector<std::unique_ptr<HashAggregate>> locals,
    std::vector<std::unique_ptr<ExecContext>> worker_ctxs,
    std::vector<std::shared_ptr<MorselCursor>> cursors)
    : ctx_(ctx),
      locals_(std::move(locals)),
      worker_ctxs_(std::move(worker_ctxs)),
      cursors_(std::move(cursors)) {
  MICROSPEC_CHECK(!locals_.empty());
  meta_ = locals_[0]->output_meta();
}

Status ParallelHashAggregate::Init() {
  merged_ = false;
  return Status::OK();
}

Status ParallelHashAggregate::RunPartials() {
  for (const auto& c : cursors_) c->Reset();
  ThreadPool* pool = ctx_->executor();
  if (pool == nullptr || ThreadPool::OnWorkerThread()) {
    // Nested below another parallel operator (or no executor): run the
    // partials sequentially right here rather than wait on a pool slot.
    for (auto& local : locals_) {
      MICROSPEC_RETURN_NOT_OK(local->PartialAccumulate());
    }
    return Status::OK();
  }
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = locals_.size();
  Status first_error;
  for (size_t i = 0; i < locals_.size(); ++i) {
    HashAggregate* agg = locals_[i].get();
    ExecContext* wctx = worker_ctxs_[i].get();
    pool->Submit([&, agg, wctx] {
      // Same per-worker trace install as Gather::WorkerMain: stall sites on
      // this thread (page I/O, forge waits) attribute to the sampled query.
      const trace::TraceContext wtc = wctx->trace();
      trace::ThreadTraceScope trace_scope(wtc.trace, wtc.parent);
      Status st = agg->PartialAccumulate();
      // Notify under the lock: the waiter's stack frame (and with it mu/done)
      // may unwind as soon as the lock is released.
      std::lock_guard<std::mutex> l(mu);
      if (!st.ok() && first_error.ok()) first_error = st;
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> l(mu);
  done.wait(l, [&] { return remaining == 0; });
  return first_error;
}

Status ParallelHashAggregate::Next(bool* has_row) {
  if (!merged_) {
    Status st = RunPartials();
    if (!st.ok()) {
      for (auto& local : locals_) local->Close();
      return st;
    }
    for (size_t i = 1; i < locals_.size(); ++i) {
      locals_[0]->MergeFrom(locals_[i].get());
      locals_[i]->Close();
    }
    merged_ = true;
  }
  MICROSPEC_RETURN_NOT_OK(locals_[0]->Next(has_row));
  if (*has_row) {
    values_ = locals_[0]->values();
    isnull_ = locals_[0]->isnull();
  }
  return Status::OK();
}

void ParallelHashAggregate::Close() { locals_[0]->Close(); }

}  // namespace microspec
