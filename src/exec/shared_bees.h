#ifndef MICROSPEC_EXEC_SHARED_BEES_H_
#define MICROSPEC_EXEC_SHARED_BEES_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "exec/access.h"

namespace microspec {

/// --- The shared bee economy -------------------------------------------------
/// Query bees (EVP/EVJ) are created at query-preparation time and are pure
/// functions of the predicate/join shape: immutable clause contexts in the
/// placement arena plus ahead-of-time monomorphized kernels. Nothing about
/// them is per-session — yet the library path forges a fresh bee (and runs
/// the full verifier over it) for every operator Init of every session.
///
/// QueryBeeCache makes the forged bee a process-wide artifact: entries are
/// keyed by a canonical fingerprint of the expression (or join-key program)
/// plus the input row shape, built exactly once under a per-entry once-flag,
/// and served to every later session as a shared, already-verified bee. K
/// concurrent sessions preparing the same statement therefore trigger one
/// specialization — the paper's amortization argument applied across
/// sessions instead of across invocations.
///
/// Thread-safety: the cache is fully concurrent (map mutex + per-entry
/// call_once). The cached bees themselves are safe to share — Matches /
/// MatchBatch / Hash* / KeysEqual are const over immutable state, and the
/// work-op accounting they do is thread-local.
///
/// Lifetime: entries hold shared_ptr ownership, so Invalidate() (the DDL
/// hook) never frees a bee still referenced by a running query.

/// Canonical fingerprint of a predicate expression evaluated against rows
/// shaped like `input_meta` (nullable). Two expressions with equal
/// fingerprints lower to byte-identical EVP bees: the serialization covers
/// node kinds, operators, attribute numbers, column metadata, LIKE
/// needles/modes, IN-list items, and constant bytes (byref payloads
/// included, so `x > 5` and `x > 7` never collide).
std::string ExprFingerprint(const Expr& expr,
                            const std::vector<ColMeta>* input_meta);

/// Canonical fingerprint of an EVJ join-key program.
std::string JoinKeysFingerprint(const std::vector<int>& outer_cols,
                                const std::vector<int>& inner_cols,
                                const std::vector<ColMeta>& key_meta,
                                int outer_width, int inner_width);

class QueryBeeCache {
 public:
  QueryBeeCache() = default;
  MICROSPEC_DISALLOW_COPY_AND_MOVE(QueryBeeCache);

  using PredicateBuilder =
      std::function<std::unique_ptr<PredicateEvaluator>()>;
  using JoinKeysBuilder = std::function<std::unique_ptr<JoinKeyEvaluator>()>;

  /// Returns the shared evaluator for `key`, invoking `build` exactly once
  /// per key process-wide (concurrent callers block until the builder
  /// finishes). A builder returning nullptr — the shape is not
  /// specializable, or the verifier rejected the bee — is remembered too, so
  /// the expensive rejection path also runs once; such entries yield
  /// nullptr and the caller falls back to the generic interpreter.
  std::shared_ptr<PredicateEvaluator> GetOrBuildPredicate(
      const std::string& key, const PredicateBuilder& build);
  std::shared_ptr<JoinKeyEvaluator> GetOrBuildJoinKeys(
      const std::string& key, const JoinKeysBuilder& build);

  /// DDL hook: drops every entry. In-flight queries keep their bees alive
  /// through shared ownership; later lookups rebuild against the new
  /// catalog state.
  void Invalidate();

  struct Stats {
    uint64_t hits = 0;    // lookups served by an existing entry
    uint64_t misses = 0;  // lookups that ran (or waited on) a builder
    size_t entries = 0;   // resident entries (including negative ones)
  };
  Stats stats() const;

 private:
  template <typename Evaluator>
  struct Entry {
    std::once_flag once;
    std::shared_ptr<Evaluator> bee;  // null for non-specializable shapes
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry<PredicateEvaluator>>>
      predicates_;
  std::unordered_map<std::string, std::shared_ptr<Entry<JoinKeyEvaluator>>>
      join_keys_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Non-owning PredicateEvaluator adapter over a shared bee. Forwards both
/// the row form and the batch form, so a shared EVP bee keeps its EVP-B
/// selection-vector kernels (the default MatchBatch would re-gather rows).
class SharedPredicate final : public PredicateEvaluator {
 public:
  explicit SharedPredicate(std::shared_ptr<PredicateEvaluator> bee)
      : bee_(std::move(bee)) {}
  bool Matches(const ExecRow& row) const override { return bee_->Matches(row); }
  int MatchBatch(const Datum* const* cols, const bool* const* nulls, int ncols,
                 int* sel, int nsel) const override {
    return bee_->MatchBatch(cols, nulls, ncols, sel, nsel);
  }

 private:
  std::shared_ptr<PredicateEvaluator> bee_;
};

/// Non-owning JoinKeyEvaluator adapter over a shared EVJ bee.
class SharedJoinKeys final : public JoinKeyEvaluator {
 public:
  explicit SharedJoinKeys(std::shared_ptr<JoinKeyEvaluator> bee)
      : bee_(std::move(bee)) {}
  uint64_t HashOuter(const Datum* values, const bool* isnull) const override {
    return bee_->HashOuter(values, isnull);
  }
  uint64_t HashInner(const Datum* values, const bool* isnull) const override {
    return bee_->HashInner(values, isnull);
  }
  bool KeysEqual(const Datum* outer_values, const bool* outer_isnull,
                 const Datum* inner_values,
                 const bool* inner_isnull) const override {
    return bee_->KeysEqual(outer_values, outer_isnull, inner_values,
                           inner_isnull);
  }

 private:
  std::shared_ptr<JoinKeyEvaluator> bee_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_SHARED_BEES_H_
