#include "exec/nested_loop_join.h"

namespace microspec {

NestedLoopJoin::NestedLoopJoin(ExecContext* ctx, OperatorPtr outer,
                               OperatorPtr inner, JoinType join_type,
                               ExprPtr predicate)
    : ctx_(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      join_type_(join_type),
      pred_expr_(std::move(predicate)) {
  outer_width_ = outer_->output_meta().size();
  inner_width_ = inner_->output_meta().size();
  meta_ = outer_->output_meta();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft) {
    for (const ColMeta& m : inner_->output_meta()) meta_.push_back(m);
  }
}

Status NestedLoopJoin::Init() {
  if (pred_ == nullptr) {
    // Specializable clauses only reference outer-side columns, so the outer
    // row shape is the input schema the verifier checks against.
    pred_ = ctx_->MakePredicate(std::move(pred_expr_), &outer_->output_meta());
  }

  // Materialize the inner side (re-Init rebuilds from scratch).
  inner_rows_.clear();
  arena_.Reset();
  MICROSPEC_RETURN_NOT_OK(inner_->Init());
  const std::vector<ColMeta>& im = inner_->output_meta();
  bool has_row = false;
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(inner_->Next(&has_row));
    if (!has_row) break;
    MatRow row;
    row.values =
        static_cast<Datum*>(arena_.Allocate(sizeof(Datum) * inner_width_, 8));
    row.isnull = static_cast<bool*>(arena_.Allocate(inner_width_, 1));
    const Datum* v = inner_->values();
    const bool* n = inner_->isnull();
    for (size_t i = 0; i < inner_width_; ++i) {
      row.isnull[i] = n != nullptr && n[i];
      row.values[i] = row.isnull[i] ? 0 : CopyDatum(&arena_, v[i], im[i]);
    }
    inner_rows_.push_back(row);
  }
  inner_->Close();

  values_buf_.assign(outer_width_ + inner_width_, 0);
  isnull_buf_ = std::make_unique<bool[]>(outer_width_ + inner_width_);
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();
  outer_valid_ = false;
  return outer_->Init();
}

void NestedLoopJoin::EmitCombined(const MatRow* inner_row) {
  const Datum* ov = outer_->values();
  const bool* on = outer_->isnull();
  for (size_t i = 0; i < outer_width_; ++i) {
    values_buf_[i] = ov[i];
    isnull_buf_[i] = on != nullptr && on[i];
  }
  if (join_type_ == JoinType::kSemi || join_type_ == JoinType::kAnti) return;
  for (size_t i = 0; i < inner_width_; ++i) {
    if (inner_row == nullptr) {
      values_buf_[outer_width_ + i] = 0;
      isnull_buf_[outer_width_ + i] = true;
    } else {
      values_buf_[outer_width_ + i] = inner_row->values[i];
      isnull_buf_[outer_width_ + i] = inner_row->isnull[i];
    }
  }
}

Status NestedLoopJoin::Next(bool* has_row) {
  for (;;) {
    if (outer_valid_) {
      bool semi_like =
          join_type_ == JoinType::kSemi || join_type_ == JoinType::kAnti;
      while (inner_pos_ < inner_rows_.size()) {
        const MatRow& irow = inner_rows_[inner_pos_++];
        ExecRow row{outer_->values(), outer_->isnull(), irow.values,
                    irow.isnull};
        if (pred_->Matches(row)) {
          outer_matched_ = true;
          if (semi_like) break;
          EmitCombined(&irow);
          *has_row = true;
          return Status::OK();
        }
      }
      outer_valid_ = false;
      if (join_type_ == JoinType::kLeft && !outer_matched_) {
        EmitCombined(nullptr);
        *has_row = true;
        return Status::OK();
      }
      if ((join_type_ == JoinType::kSemi && outer_matched_) ||
          (join_type_ == JoinType::kAnti && !outer_matched_)) {
        EmitCombined(nullptr);
        *has_row = true;
        return Status::OK();
      }
    }
    MICROSPEC_RETURN_NOT_OK(outer_->Next(has_row));
    if (!*has_row) return Status::OK();
    inner_pos_ = 0;
    outer_matched_ = false;
    outer_valid_ = true;
  }
}

void NestedLoopJoin::Close() {
  outer_->Close();
  inner_rows_.clear();
  arena_.Reset();
}

}  // namespace microspec
