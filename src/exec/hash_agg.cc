#include "exec/hash_agg.h"

#include "common/counters.h"

namespace microspec {

namespace {

bool ArgIsFloat(const ColMeta& m) { return m.type == TypeId::kFloat64; }

ColMeta AggOutputMeta(const AggSpec& spec, const ColMeta& arg_meta) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return ColMeta::Of(TypeId::kInt64);
    case AggKind::kSum:
      return ArgIsFloat(arg_meta) ? ColMeta::Of(TypeId::kFloat64)
                                  : ColMeta::Of(TypeId::kInt64);
    case AggKind::kAvg:
      return ColMeta::Of(TypeId::kFloat64);
    case AggKind::kMin:
    case AggKind::kMax:
      return arg_meta;
  }
  return ColMeta::Of(TypeId::kInt64);
}

/// Monomorphized aggregate-update kernels (the aggregation bee's
/// pre-compiled variants). One instantiation per (kind x argument type);
/// the attribute number arrives patched in from the kernel context.
void SumFloatKernel(HashAggregate::AggState& st, const Datum* v,
                    const bool* n, int attno) {
  if (n != nullptr && n[attno]) return;
  st.fsum += DatumToFloat64(v[attno]);
  ++st.count;
}
void SumIntKernel(HashAggregate::AggState& st, const Datum* v, const bool* n,
                  int attno) {
  if (n != nullptr && n[attno]) return;
  st.isum += DatumToInt64(v[attno]);
  ++st.count;
}
void CountKernel(HashAggregate::AggState& st, const Datum* v, const bool* n,
                 int attno) {
  (void)v;
  if (n != nullptr && n[attno]) return;
  ++st.count;
}
void CountStarKernel(HashAggregate::AggState& st, const Datum*, const bool*,
                     int) {
  ++st.count;
}
template <bool kMin>
void ExtremeFloatKernel(HashAggregate::AggState& st, const Datum* v,
                        const bool* n, int attno) {
  if (n != nullptr && n[attno]) return;
  double x = DatumToFloat64(v[attno]);
  if (!st.has_value ||
      (kMin ? x < DatumToFloat64(st.extreme) : x > DatumToFloat64(st.extreme))) {
    st.extreme = DatumFromFloat64(x);
    st.has_value = true;
  }
}
template <bool kMin>
void ExtremeIntKernel(HashAggregate::AggState& st, const Datum* v,
                      const bool* n, int attno) {
  if (n != nullptr && n[attno]) return;
  int64_t x = DatumToInt64(v[attno]);
  if (!st.has_value ||
      (kMin ? x < DatumToInt64(st.extreme) : x > DatumToInt64(st.extreme))) {
    st.extreme = DatumFromInt64(x);
    st.has_value = true;
  }
}

bool IsIntKind(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kDate;
}

/// Value-form update kernels for batch accumulation: one column cell in,
/// no row pointer. Only by-value argument types get one, so storing the
/// extreme Datum directly (no arena copy) is always safe.
void SumFloatColKernel(HashAggregate::AggState& st, Datum v, bool n) {
  if (n) return;
  st.fsum += DatumToFloat64(v);
  ++st.count;
}
void SumIntColKernel(HashAggregate::AggState& st, Datum v, bool n) {
  if (n) return;
  st.isum += DatumToInt64(v);
  ++st.count;
}
void CountColKernel(HashAggregate::AggState& st, Datum, bool n) {
  if (n) return;
  ++st.count;
}
void CountStarColKernel(HashAggregate::AggState& st, Datum, bool) {
  ++st.count;
}
template <bool kMin>
void ExtremeFloatColKernel(HashAggregate::AggState& st, Datum v, bool n) {
  if (n) return;
  double x = DatumToFloat64(v);
  if (!st.has_value ||
      (kMin ? x < DatumToFloat64(st.extreme) : x > DatumToFloat64(st.extreme))) {
    st.extreme = DatumFromFloat64(x);
    st.has_value = true;
  }
}
template <bool kMin>
void ExtremeIntColKernel(HashAggregate::AggState& st, Datum v, bool n) {
  if (n) return;
  int64_t x = DatumToInt64(v);
  if (!st.has_value ||
      (kMin ? x < DatumToInt64(st.extreme) : x > DatumToInt64(st.extreme))) {
    st.extreme = DatumFromInt64(x);
    st.has_value = true;
  }
}

}  // namespace

void HashAggregate::BuildAggKernels() {
  kernels_.clear();
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggKernel k;
    const AggSpec& spec = aggs_[i];
    if (spec.kind == AggKind::kCountStar) {
      k.fn = CountStarKernel;
      kernels_.push_back(k);
      continue;
    }
    // Only bare outer-column arguments qualify; anything else falls back to
    // the generic update for that spec (as with EVP's unsupported shapes).
    if (spec.arg->kind() != ExprKind::kVar) {
      kernels_.push_back(k);
      continue;
    }
    const auto& var = static_cast<const VarExpr&>(*spec.arg);
    if (var.side() != RowSide::kOuter) {
      kernels_.push_back(k);
      continue;
    }
    k.attno = var.attno();
    bool is_float = agg_arg_meta_[i].type == TypeId::kFloat64;
    bool is_int = IsIntKind(agg_arg_meta_[i].type);
    switch (spec.kind) {
      case AggKind::kCount:
        k.fn = CountKernel;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (is_float) {
          k.fn = SumFloatKernel;
        } else if (is_int) {
          k.fn = SumIntKernel;
        }
        break;
      case AggKind::kMin:
        if (is_float) {
          k.fn = ExtremeFloatKernel<true>;
        } else if (is_int) {
          k.fn = ExtremeIntKernel<true>;
        }
        break;
      case AggKind::kMax:
        if (is_float) {
          k.fn = ExtremeFloatKernel<false>;
        } else if (is_int) {
          k.fn = ExtremeIntKernel<false>;
        }
        break;
      default:
        break;
    }
    kernels_.push_back(k);
  }
}

void HashAggregate::BuildColKernels() {
  col_kernels_.clear();
  batch_all_kernels_ = true;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggColKernel k;
    const AggSpec& spec = aggs_[i];
    if (spec.kind == AggKind::kCountStar) {
      k.fn = CountStarColKernel;
      col_kernels_.push_back(k);
      continue;
    }
    // Same qualification rule as the agg bee's kernels: bare outer columns
    // of by-value type; everything else gathers the row per update.
    if (spec.arg->kind() == ExprKind::kVar) {
      const auto& var = static_cast<const VarExpr&>(*spec.arg);
      if (var.side() == RowSide::kOuter) {
        k.attno = var.attno();
        bool is_float = agg_arg_meta_[i].type == TypeId::kFloat64;
        bool is_int = IsIntKind(agg_arg_meta_[i].type);
        switch (spec.kind) {
          case AggKind::kCount:
            k.fn = CountColKernel;
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            if (is_float) {
              k.fn = SumFloatColKernel;
            } else if (is_int) {
              k.fn = SumIntColKernel;
            }
            break;
          case AggKind::kMin:
            if (is_float) {
              k.fn = ExtremeFloatColKernel<true>;
            } else if (is_int) {
              k.fn = ExtremeIntColKernel<true>;
            }
            break;
          case AggKind::kMax:
            if (is_float) {
              k.fn = ExtremeFloatColKernel<false>;
            } else if (is_int) {
              k.fn = ExtremeIntColKernel<false>;
            }
            break;
          default:
            break;
        }
      }
    }
    if (k.fn == nullptr) batch_all_kernels_ = false;
    col_kernels_.push_back(k);
  }
}

void HashAggregate::UpdateWithKernels(Group* g, const ExecRow& row) {
  uint64_t ops = 0;
  for (size_t i = 0; i < kernels_.size(); ++i) {
    const AggKernel& k = kernels_[i];
    ops += 2;  // the bee's whole per-aggregate cost
    if (k.fn != nullptr) {
      k.fn(g->states[i], row.values, row.isnull, k.attno);
      continue;
    }
    // Fallback: the generic path for this one spec.
    AggState& st = g->states[i];
    const AggSpec& spec = aggs_[i];
    bool isnull = false;
    Datum v = spec.arg->Eval(row, &isnull);
    if (isnull) continue;
    switch (spec.kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        if (ArgIsFloat(agg_arg_meta_[i])) {
          st.fsum += DatumToFloat64(v);
        } else {
          st.isum += DatumToInt64(v);
        }
        ++st.count;
        break;
      case AggKind::kCount:
        ++st.count;
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        if (!st.has_value) {
          st.extreme = CopyDatum(&arena_, v, agg_arg_meta_[i]);
          st.has_value = true;
          break;
        }
        int c = DatumCompareGeneric(v, st.extreme, agg_arg_meta_[i]);
        if ((spec.kind == AggKind::kMin && c < 0) ||
            (spec.kind == AggKind::kMax && c > 0)) {
          st.extreme = CopyDatum(&arena_, v, agg_arg_meta_[i]);
        }
        break;
      }
      default:
        break;
    }
  }
  workops::Bump(ops);
}

HashAggregate::HashAggregate(ExecContext* ctx, OperatorPtr child,
                             std::vector<int> group_cols,
                             std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  for (int c : group_cols_) {
    group_meta_.push_back(child_->output_meta()[static_cast<size_t>(c)]);
    meta_.push_back(group_meta_.back());
  }
  for (const AggSpec& a : aggs_) {
    ColMeta am =
        a.arg != nullptr ? a.arg->meta() : ColMeta::Of(TypeId::kInt64);
    agg_arg_meta_.push_back(am);
    meta_.push_back(AggOutputMeta(a, am));
  }
}

Status HashAggregate::Init() {
  accumulated_ = false;
  emit_pos_ = 0;
  groups_.clear();
  arena_.Reset();
  buckets_.assign(1024, nullptr);
  bucket_mask_ = buckets_.size() - 1;
  values_buf_.assign(meta_.size(), 0);
  isnull_buf_ = std::make_unique<bool[]>(meta_.size());
  values_ = values_buf_.data();
  isnull_ = isnull_buf_.get();
  use_kernels_ = ctx_->options().enable_agg_bee;
  if (use_kernels_) BuildAggKernels();
  return child_->Init();
}

void HashAggregate::UpdateGeneric(Group* g, const ExecRow& row) {
  // The generic update loop: per aggregate, evaluate the argument through
  // the interpreter and dispatch on kind and argument type.
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggState& st = g->states[i];
    const AggSpec& spec = aggs_[i];
    workops::Bump(5);  // agg-kind dispatch + state load
    if (spec.kind == AggKind::kCountStar) {
      ++st.count;
      continue;
    }
    bool isnull = false;
    Datum v = spec.arg->Eval(row, &isnull);
    if (isnull) continue;  // SQL aggregates skip NULLs
    switch (spec.kind) {
      case AggKind::kCountStar:
        break;
      case AggKind::kCount:
        ++st.count;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        workops::Bump(3);  // argument-type dispatch
        if (ArgIsFloat(agg_arg_meta_[i])) {
          st.fsum += DatumToFloat64(v);
        } else {
          st.isum += DatumToInt64(v);
        }
        ++st.count;
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        workops::Bump(3);
        if (!st.has_value) {
          st.extreme = CopyDatum(&arena_, v, agg_arg_meta_[i]);
          st.has_value = true;
          break;
        }
        int c = DatumCompareGeneric(v, st.extreme, agg_arg_meta_[i]);
        if ((spec.kind == AggKind::kMin && c < 0) ||
            (spec.kind == AggKind::kMax && c > 0)) {
          st.extreme = CopyDatum(&arena_, v, agg_arg_meta_[i]);
        }
        break;
      }
    }
  }
}

void HashAggregate::SynthesizeEmptyGlobalGroup() {
  // Global aggregation over an empty input still yields one row.
  if (!groups_.empty() || !group_cols_.empty()) return;
  Group* g = static_cast<Group*>(arena_.Allocate(sizeof(Group), alignof(Group)));
  g->hash = 0;
  g->keys = nullptr;
  g->keynull = nullptr;
  g->states = static_cast<AggState*>(arena_.Allocate(
      sizeof(AggState) * (aggs_.empty() ? 1 : aggs_.size()),
      alignof(AggState)));
  for (size_t i = 0; i < aggs_.size(); ++i) g->states[i] = AggState{};
  // Chain into the table too so MergeFrom finds it: dop parallel partials
  // over an empty input each synthesize this group, and the merge must
  // collapse them into one output row, not dop of them.
  g->next = buckets_[g->hash & bucket_mask_];
  buckets_[g->hash & bucket_mask_] = g;
  groups_.push_back(g);
}

Status HashAggregate::Accumulate() {
  if (ctx_->batch_rows() > 0 && child_->BatchCapable()) {
    return AccumulateBatch();
  }
  bool has_row = false;
  const size_t nkeys = group_cols_.size();
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(child_->Next(&has_row));
    if (!has_row) break;
    const Datum* cv = child_->values();
    const bool* cn = child_->isnull();
    ExecRow row{cv, cn, nullptr, nullptr};
    workops::Bump(8);  // agg-node dispatch per input row

    // Hash the group key (generic: per-key type dispatch).
    uint64_t h = 0;
    for (size_t i = 0; i < nkeys; ++i) {
      int c = group_cols_[i];
      workops::Bump(2);
      if (cn != nullptr && cn[c]) continue;
      h = DatumHashGeneric(cv[c], group_meta_[i], h);
    }

    // Find or create the group.
    Group* g = buckets_[h & bucket_mask_];
    while (g != nullptr) {
      workops::Bump(2);
      if (g->hash == h) {
        bool eq = true;
        for (size_t i = 0; i < nkeys; ++i) {
          int c = group_cols_[i];
          bool rn = cn != nullptr && cn[c];
          if (rn != g->keynull[i] ||
              (!rn && !DatumEqualsGeneric(cv[c], g->keys[i], group_meta_[i]))) {
            eq = false;
            break;
          }
        }
        if (eq) break;
      }
      g = g->next;
    }
    if (g == nullptr) {
      g = static_cast<Group*>(arena_.Allocate(sizeof(Group), alignof(Group)));
      g->hash = h;
      g->keys = static_cast<Datum*>(
          arena_.Allocate(sizeof(Datum) * (nkeys == 0 ? 1 : nkeys), 8));
      g->keynull = static_cast<bool*>(
          arena_.Allocate(nkeys == 0 ? 1 : nkeys, 1));
      for (size_t i = 0; i < nkeys; ++i) {
        int c = group_cols_[i];
        g->keynull[i] = cn != nullptr && cn[c];
        g->keys[i] =
            g->keynull[i] ? 0 : CopyDatum(&arena_, cv[c], group_meta_[i]);
      }
      g->states = static_cast<AggState*>(arena_.Allocate(
          sizeof(AggState) * (aggs_.empty() ? 1 : aggs_.size()),
          alignof(AggState)));
      for (size_t i = 0; i < aggs_.size(); ++i) g->states[i] = AggState{};
      g->next = buckets_[h & bucket_mask_];
      buckets_[h & bucket_mask_] = g;
      groups_.push_back(g);
    }

    if (use_kernels_) {
      UpdateWithKernels(g, row);
    } else {
      UpdateGeneric(g, row);
    }
  }
  child_->Close();
  SynthesizeEmptyGlobalGroup();
  return Status::OK();
}

Status HashAggregate::AccumulateBatch() {
  const size_t nkeys = group_cols_.size();
  const int child_ncols = static_cast<int>(child_->output_meta().size());
  const int cap = ctx_->batch_rows();
  if (batch_ == nullptr || batch_->capacity() != cap ||
      batch_->ncols() != child_ncols) {
    batch_ = std::make_unique<RowBatch>(child_ncols, cap);
  }
  crow_values_.assign(static_cast<size_t>(child_ncols), 0);
  crow_isnull_ = std::make_unique<bool[]>(static_cast<size_t>(child_ncols));
  BuildColKernels();
  for (;;) {
    MICROSPEC_RETURN_NOT_OK(child_->NextBatch(batch_.get()));
    const int nsel = batch_->selected();
    if (nsel == 0) break;
    workops::Bump(8);  // agg-node dispatch, amortized over the batch
    const int* sel = batch_->sel();
    for (int si = 0; si < nsel; ++si) {
      const int r = sel[si];

      // Hash the group key straight out of the column arrays.
      uint64_t h = 0;
      for (size_t i = 0; i < nkeys; ++i) {
        int c = group_cols_[i];
        workops::Bump(2);
        if (batch_->nulls(c)[r]) continue;
        h = DatumHashGeneric(batch_->col(c)[r], group_meta_[i], h);
      }

      // Find or create the group (column-array flavor of Accumulate's probe).
      Group* g = buckets_[h & bucket_mask_];
      while (g != nullptr) {
        workops::Bump(2);
        if (g->hash == h) {
          bool eq = true;
          for (size_t i = 0; i < nkeys; ++i) {
            int c = group_cols_[i];
            bool rn = batch_->nulls(c)[r];
            if (rn != g->keynull[i] ||
                (!rn && !DatumEqualsGeneric(batch_->col(c)[r], g->keys[i],
                                            group_meta_[i]))) {
              eq = false;
              break;
            }
          }
          if (eq) break;
        }
        g = g->next;
      }
      if (g == nullptr) {
        g = static_cast<Group*>(arena_.Allocate(sizeof(Group), alignof(Group)));
        g->hash = h;
        g->keys = static_cast<Datum*>(
            arena_.Allocate(sizeof(Datum) * (nkeys == 0 ? 1 : nkeys), 8));
        g->keynull = static_cast<bool*>(
            arena_.Allocate(nkeys == 0 ? 1 : nkeys, 1));
        for (size_t i = 0; i < nkeys; ++i) {
          int c = group_cols_[i];
          g->keynull[i] = batch_->nulls(c)[r];
          g->keys[i] = g->keynull[i]
                           ? 0
                           : CopyDatum(&arena_, batch_->col(c)[r],
                                       group_meta_[i]);
        }
        g->states = static_cast<AggState*>(arena_.Allocate(
            sizeof(AggState) * (aggs_.empty() ? 1 : aggs_.size()),
            alignof(AggState)));
        for (size_t i = 0; i < aggs_.size(); ++i) g->states[i] = AggState{};
        g->next = buckets_[h & bucket_mask_];
        buckets_[h & bucket_mask_] = g;
        groups_.push_back(g);
      }

      if (batch_all_kernels_) {
        // Column-at-a-time update: one cell load per aggregate, no row.
        uint64_t ops = 0;
        for (size_t i = 0; i < col_kernels_.size(); ++i) {
          const AggColKernel& k = col_kernels_[i];
          // Same modeled cost as the scalar update in each bee mode; the
          // batch savings are the amortized dispatch, not the arithmetic.
          ops += use_kernels_ ? 2 : 8;
          if (k.attno < 0) {
            k.fn(g->states[i], 0, false);
          } else {
            k.fn(g->states[i], batch_->col(k.attno)[r],
                 batch_->nulls(k.attno)[r]);
          }
        }
        workops::Bump(ops);
      } else {
        // Some aggregate needs the full row (expression argument or
        // by-reference extreme): gather once and reuse the scalar update.
        batch_->GatherRow(r, crow_values_.data(), crow_isnull_.get());
        ExecRow row{crow_values_.data(), crow_isnull_.get(), nullptr, nullptr};
        if (use_kernels_) {
          UpdateWithKernels(g, row);
        } else {
          UpdateGeneric(g, row);
        }
      }
    }
  }
  child_->Close();
  SynthesizeEmptyGlobalGroup();
  return Status::OK();
}

void HashAggregate::EmitGroup(const Group* g) {
  size_t out = 0;
  for (size_t i = 0; i < group_cols_.size(); ++i, ++out) {
    values_buf_[out] = g->keys[i];
    isnull_buf_[out] = g->keynull[i];
  }
  for (size_t i = 0; i < aggs_.size(); ++i, ++out) {
    const AggState& st = g->states[i];
    isnull_buf_[out] = false;
    switch (aggs_[i].kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        values_buf_[out] = DatumFromInt64(st.count);
        break;
      case AggKind::kSum:
        if (st.count == 0) {
          isnull_buf_[out] = true;
          values_buf_[out] = 0;
        } else if (ArgIsFloat(agg_arg_meta_[i])) {
          values_buf_[out] = DatumFromFloat64(st.fsum);
        } else {
          values_buf_[out] = DatumFromInt64(st.isum);
        }
        break;
      case AggKind::kAvg:
        if (st.count == 0) {
          isnull_buf_[out] = true;
          values_buf_[out] = 0;
        } else {
          double total = ArgIsFloat(agg_arg_meta_[i])
                             ? st.fsum
                             : static_cast<double>(st.isum);
          values_buf_[out] =
              DatumFromFloat64(total / static_cast<double>(st.count));
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        if (!st.has_value) {
          isnull_buf_[out] = true;
          values_buf_[out] = 0;
        } else {
          values_buf_[out] = st.extreme;
        }
        break;
    }
  }
}

Status HashAggregate::PartialAccumulate() {
  MICROSPEC_RETURN_NOT_OK(Init());
  MICROSPEC_RETURN_NOT_OK(Accumulate());
  accumulated_ = true;
  return Status::OK();
}

void HashAggregate::MergeFrom(HashAggregate* src) {
  const size_t nkeys = group_cols_.size();
  for (Group* sg : src->groups_) {
    // Find or create the destination group; unlike Accumulate the key
    // values come from the source group, not a child row.
    uint64_t h = sg->hash;
    Group* g = buckets_[h & bucket_mask_];
    while (g != nullptr) {
      if (g->hash == h) {
        bool eq = true;
        for (size_t i = 0; i < nkeys; ++i) {
          if (sg->keynull[i] != g->keynull[i] ||
              (!sg->keynull[i] &&
               !DatumEqualsGeneric(sg->keys[i], g->keys[i], group_meta_[i]))) {
            eq = false;
            break;
          }
        }
        if (eq) break;
      }
      g = g->next;
    }
    if (g == nullptr) {
      g = static_cast<Group*>(arena_.Allocate(sizeof(Group), alignof(Group)));
      g->hash = h;
      g->keys = static_cast<Datum*>(
          arena_.Allocate(sizeof(Datum) * (nkeys == 0 ? 1 : nkeys), 8));
      g->keynull =
          static_cast<bool*>(arena_.Allocate(nkeys == 0 ? 1 : nkeys, 1));
      for (size_t i = 0; i < nkeys; ++i) {
        g->keynull[i] = sg->keynull[i];
        g->keys[i] =
            g->keynull[i] ? 0 : CopyDatum(&arena_, sg->keys[i], group_meta_[i]);
      }
      g->states = static_cast<AggState*>(arena_.Allocate(
          sizeof(AggState) * (aggs_.empty() ? 1 : aggs_.size()),
          alignof(AggState)));
      for (size_t i = 0; i < aggs_.size(); ++i) g->states[i] = AggState{};
      g->next = buckets_[h & bucket_mask_];
      buckets_[h & bucket_mask_] = g;
      groups_.push_back(g);
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      AggState& d = g->states[i];
      const AggState& s = sg->states[i];
      d.fsum += s.fsum;
      d.isum += s.isum;
      d.count += s.count;
      if (s.has_value) {
        if (!d.has_value) {
          d.extreme = CopyDatum(&arena_, s.extreme, agg_arg_meta_[i]);
          d.has_value = true;
        } else {
          int c = DatumCompareGeneric(s.extreme, d.extreme, agg_arg_meta_[i]);
          if ((aggs_[i].kind == AggKind::kMin && c < 0) ||
              (aggs_[i].kind == AggKind::kMax && c > 0)) {
            d.extreme = CopyDatum(&arena_, s.extreme, agg_arg_meta_[i]);
          }
        }
      }
    }
  }
}

Status HashAggregate::Next(bool* has_row) {
  if (!accumulated_) {
    MICROSPEC_RETURN_NOT_OK(Accumulate());
    accumulated_ = true;
  }
  if (emit_pos_ >= groups_.size()) {
    *has_row = false;
    return Status::OK();
  }
  EmitGroup(groups_[emit_pos_++]);
  *has_row = true;
  return Status::OK();
}

void HashAggregate::Close() {
  groups_.clear();
  buckets_.clear();
  arena_.Reset();
  if (batch_ != nullptr) batch_->Reset();  // drop any page pin held mid-error
}

}  // namespace microspec
