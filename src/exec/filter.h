#ifndef MICROSPEC_EXEC_FILTER_H_
#define MICROSPEC_EXEC_FILTER_H_

#include <memory>
#include <string>
#include <utility>

#include "common/counters.h"
#include "common/telemetry.h"
#include "exec/operator.h"
#include "exec/shared_bees.h"
#include "exec/stats_feedback.h"

namespace microspec {

/// Applies a predicate to each child row. The predicate is evaluated either
/// by the generic expression interpreter or by an EVP query bee, decided at
/// Init (query-preparation) time by ExecContext::MakePredicate.
///
/// Selectivity feedback: rows-in and rows-out are counted in two member
/// integers unconditionally (cheap, branch-free) and flushed on Close into
/// StatsFeedback keyed by the predicate's EVP fingerprint — but only when
/// the context carries a collector, so the default path adds two increments
/// per row and nothing else.
class Filter final : public Operator {
 public:
  Filter(ExecContext* ctx, OperatorPtr child, ExprPtr predicate)
      : ctx_(ctx), child_(std::move(child)), pred_expr_(std::move(predicate)) {
    meta_ = child_->output_meta();
  }

  ~Filter() override { FlushStats(); }

  Status Init() override {
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    // Query preparation happens once; Init may be called again to rescan.
    if (evaluator_ == nullptr) {
      // The fingerprint must be taken before MakePredicate consumes the
      // expression tree; it is the exact QueryBeeCache key, so selectivity
      // samples join against the PR 7 bee-cache accounting.
      if (ctx_->stats_feedback() != nullptr && pred_expr_ != nullptr) {
        fingerprint_ = ExprFingerprint(*pred_expr_, &meta_);
        display_ = DescribeExpr(*pred_expr_);
      }
      const bool traced = static_cast<bool>(ctx_->trace());
      if (traced) prepare_ns_ = telemetry::NowNs();
      evaluator_ = ctx_->MakePredicate(std::move(pred_expr_), &meta_);
      // The generic interpreter is an ExprPredicate (or end of the chain);
      // anything else is a specialized EVP artifact.
      specialized_ =
          dynamic_cast<ExprPredicate*>(evaluator_.get()) == nullptr;
    }
    values_ = child_->values();
    isnull_ = child_->isnull();
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    for (;;) {
      MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
      if (!*has_row) return Status::OK();
      ++rows_in_;
      ExecRow row{child_->values(), child_->isnull(), nullptr, nullptr};
      workops::Bump(6);  // qual-node dispatch per input row
      if (evaluator_->Matches(row)) {
        ++rows_out_;
        values_ = child_->values();
        isnull_ = child_->isnull();
        return Status::OK();
      }
    }
  }

  /// Batch path: narrows the child batch's selection vector in place — no
  /// row is copied or moved. With an EVP bee the compaction runs through
  /// the bee's batch kernels (EVP-B); otherwise through the generic
  /// gather-and-interpret fallback.
  Status NextBatch(RowBatch* batch) override {
    for (;;) {
      MICROSPEC_RETURN_NOT_OK(child_->NextBatch(batch));
      if (batch->selected() == 0) return Status::OK();  // end of stream
      rows_in_ += static_cast<uint64_t>(batch->selected());
      workops::Bump(6);  // qual-node dispatch, amortized over the batch
      const int nsel = evaluator_->MatchBatch(
          batch->cols(), batch->null_cols(), batch->ncols(), batch->sel(),
          batch->selected());
      batch->SetSelected(nsel);
      rows_out_ += static_cast<uint64_t>(nsel);
      // A fully filtered-out batch must not read as end-of-stream.
      if (nsel > 0) return Status::OK();
    }
  }

  bool BatchCapable() const override { return child_->BatchCapable(); }

  void Close() override {
    child_->Close();
    FlushStats();
  }

 private:
  void FlushStats() {
    if (rows_in_ == 0 && rows_out_ == 0) return;
    StatsFeedback* sf = ctx_->stats_feedback();
    if (sf != nullptr && !fingerprint_.empty()) {
      sf->RecordPredicate(fingerprint_, display_, rows_in_, rows_out_);
    }
    const trace::TraceContext& tc = ctx_->trace();
    if (tc && evaluator_ != nullptr) {
      // One aggregated bee-invocation span per run: rows = rows in,
      // aux = rows out, window = prepare..close. Parent resolves to the
      // exec span via the trace's default parent.
      tc.trace->AddComplete(tc.trace->default_parent(), trace::SpanKind::kBee,
                            specialized_ ? "evp-bee" : "evp-interp",
                            prepare_ns_ != 0 ? prepare_ns_
                                             : telemetry::NowNs(),
                            telemetry::NowNs(), trace::WaitKind::kNone,
                            rows_in_, rows_out_);
    }
    rows_in_ = rows_out_ = 0;
  }

  ExecContext* ctx_;
  OperatorPtr child_;
  ExprPtr pred_expr_;
  std::unique_ptr<PredicateEvaluator> evaluator_;
  std::string fingerprint_;
  std::string display_;
  bool specialized_ = false;
  uint64_t prepare_ns_ = 0;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_FILTER_H_
