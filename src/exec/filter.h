#ifndef MICROSPEC_EXEC_FILTER_H_
#define MICROSPEC_EXEC_FILTER_H_

#include <memory>
#include <utility>

#include "common/counters.h"
#include "exec/operator.h"

namespace microspec {

/// Applies a predicate to each child row. The predicate is evaluated either
/// by the generic expression interpreter or by an EVP query bee, decided at
/// Init (query-preparation) time by ExecContext::MakePredicate.
class Filter final : public Operator {
 public:
  Filter(ExecContext* ctx, OperatorPtr child, ExprPtr predicate)
      : ctx_(ctx), child_(std::move(child)), pred_expr_(std::move(predicate)) {
    meta_ = child_->output_meta();
  }

  Status Init() override {
    MICROSPEC_RETURN_NOT_OK(child_->Init());
    // Query preparation happens once; Init may be called again to rescan.
    if (evaluator_ == nullptr) {
      evaluator_ = ctx_->MakePredicate(std::move(pred_expr_), &meta_);
    }
    values_ = child_->values();
    isnull_ = child_->isnull();
    return Status::OK();
  }

  Status Next(bool* has_row) override {
    for (;;) {
      MICROSPEC_RETURN_NOT_OK(child_->Next(has_row));
      if (!*has_row) return Status::OK();
      ExecRow row{child_->values(), child_->isnull(), nullptr, nullptr};
      workops::Bump(6);  // qual-node dispatch per input row
      if (evaluator_->Matches(row)) {
        values_ = child_->values();
        isnull_ = child_->isnull();
        return Status::OK();
      }
    }
  }

  /// Batch path: narrows the child batch's selection vector in place — no
  /// row is copied or moved. With an EVP bee the compaction runs through
  /// the bee's batch kernels (EVP-B); otherwise through the generic
  /// gather-and-interpret fallback.
  Status NextBatch(RowBatch* batch) override {
    for (;;) {
      MICROSPEC_RETURN_NOT_OK(child_->NextBatch(batch));
      if (batch->selected() == 0) return Status::OK();  // end of stream
      workops::Bump(6);  // qual-node dispatch, amortized over the batch
      const int nsel = evaluator_->MatchBatch(
          batch->cols(), batch->null_cols(), batch->ncols(), batch->sel(),
          batch->selected());
      batch->SetSelected(nsel);
      // A fully filtered-out batch must not read as end-of-stream.
      if (nsel > 0) return Status::OK();
    }
  }

  bool BatchCapable() const override { return child_->BatchCapable(); }

  void Close() override { child_->Close(); }

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  ExprPtr pred_expr_;
  std::unique_ptr<PredicateEvaluator> evaluator_;
};

}  // namespace microspec

#endif  // MICROSPEC_EXEC_FILTER_H_
