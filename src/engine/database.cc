#include "engine/database.h"

#include <sys/stat.h>

#include "storage/tuple.h"

namespace microspec {

namespace {
/// Per-thread scratch for tuple forming, so concurrent TPC-C terminals do
/// not contend on a shared buffer.
thread_local std::string t_form_buf;
}  // namespace

namespace {
/// mkdir -p: creates every missing component of `dir`.
void MakeDirs(const std::string& dir) {
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      ::mkdir(dir.substr(0, i).c_str(), 0755);
    }
  }
}
}  // namespace

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("database dir required");
  }
  MakeDirs(options.dir);
  std::unique_ptr<Database> db(new Database(std::move(options)));
  db->pool_ =
      std::make_unique<BufferPool>(db->options_.buffer_pool_frames, &db->stats_);
  db->catalog_ = std::make_unique<Catalog>(db->options_.dir, db->pool_.get());
  if (db->options_.enable_bees) {
    bee::BeeModuleOptions bo;
    bo.backend = db->options_.backend;
    bo.placement_isolation = db->options_.placement_isolation;
    bo.cache_dir = db->options_.dir + "/bees";
    bo.verify = db->options_.verify_mode;
    bo.forge = db->options_.forge;
    db->bees_ = std::make_unique<bee::BeeModule>(bo);
  }
  if (db->options_.wal_enabled) {
    Wal::Options wo;
    wo.group_commit = db->options_.wal_group_commit;
    wo.group_commit_window_us = db->options_.wal_group_commit_window_us;
    wo.stats = &db->stats_;
    MICROSPEC_ASSIGN_OR_RETURN(db->wal_,
                               Wal::Open(db->options_.dir + "/wal.log", wo));
    // The WAL rule: no dirty page reaches disk before the log records it
    // reflects are durable. The pool consults this hook at every writeback.
    Wal* wal = db->wal_.get();
    db->pool_->SetWalFlushHook(
        [wal](uint64_t lsn) { return wal->FlushUpTo(lsn); });
    MICROSPEC_ASSIGN_OR_RETURN(db->last_recovery_, RunRecovery(db.get()));
  }
  return db;
}

Database::~Database() {
  // After a simulated crash the pool holds only discarded frames and the
  // WAL suppresses its final flush — flushing here would un-crash the test.
  if (pool_ != nullptr && !crashed_.load(std::memory_order_acquire)) {
    (void)pool_->FlushAll();
  }
}

void Database::SimulateCrashForTests() {
  crashed_.store(true, std::memory_order_release);
  if (wal_ != nullptr) wal_->SimulateCrashForTests();
  pool_->DiscardAllForTests();
}

Result<TableInfo*> Database::CreateTable(const std::string& name,
                                         Schema schema) {
  MICROSPEC_ASSIGN_OR_RETURN(TableInfo * table,
                             catalog_->CreateTable(name, std::move(schema)));
  if (bees_ != nullptr) {
    MICROSPEC_RETURN_NOT_OK(
        bees_->CreateRelationBees(table, options_.enable_tuple_bees));
  }
  if (wal_ != nullptr) {
    // The catalog is in-memory: this record (with the full annotated
    // schema) is what recovery rebuilds the relation — and its bees — from.
    std::string schema_bytes;
    table->schema().Serialize(&schema_bytes);
    std::string payload;
    walenc::EncodeCreateTable(&payload, table->id(), name, schema_bytes);
    wal_->Append(WalRecordType::kCreateTable, 0, 0, payload);
    MICROSPEC_RETURN_NOT_OK(wal_->Flush());
  }
  // DDL invalidates every cached plan/bee keyed to the previous epoch.
  shared_bees_.Invalidate();
  ddl_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return table;
}

Status Database::DropTable(const std::string& name) {
  TableInfo* table = catalog_->GetTable(name);
  if (table == nullptr) return Status::NotFound("table " + name);
  TableId id = table->id();
  MICROSPEC_RETURN_NOT_OK(catalog_->DropTable(name));
  if (bees_ != nullptr) bees_->CollectTable(id);  // the Bee Collector
  if (wal_ != nullptr) {
    std::string payload;
    walenc::EncodeDropTable(&payload, id);
    wal_->Append(WalRecordType::kDropTable, 0, 0, payload);
    MICROSPEC_RETURN_NOT_OK(wal_->Flush());
    std::lock_guard<std::mutex> guard(wal_sections_mu_);
    wal_logged_sections_.erase(id);
  }
  shared_bees_.Invalidate();
  ddl_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Result<IndexInfo*> Database::CreateIndex(TableInfo* table,
                                         const std::string& name,
                                         std::vector<int> key_columns) {
  MICROSPEC_ASSIGN_OR_RETURN(IndexInfo * idx,
                             table->CreateIndex(name, key_columns));
  if (wal_ != nullptr) {
    std::string payload;
    walenc::EncodeCreateIndex(&payload, table->id(), name, key_columns);
    wal_->Append(WalRecordType::kCreateIndex, 0, 0, payload);
    MICROSPEC_RETURN_NOT_OK(wal_->Flush());
  }
  shared_bees_.Invalidate();
  ddl_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return idx;
}

/// --- WAL transactions -------------------------------------------------------

Result<WalTxn> Database::BeginTxn() {
  if (wal_ == nullptr) return Status::NotSupported("wal disabled");
  WalTxn txn;
  txn.id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  txn.last_lsn = wal_->Append(WalRecordType::kBegin, txn.id, 0, "").start_lsn;
  return txn;
}

Status Database::CommitTxn(WalTxn* txn) {
  if (wal_ == nullptr) return Status::NotSupported("wal disabled");
  Wal::AppendResult ar =
      wal_->Append(WalRecordType::kCommit, txn->id, txn->last_lsn, "");
  txn->last_lsn = ar.start_lsn;
  return wal_->Commit(ar.end_lsn);
}

Status Database::AbortTxn(WalTxn* txn) {
  if (wal_ == nullptr) return Status::NotSupported("wal disabled");
  uint64_t last = txn->last_lsn;
  uint64_t clrs = 0;
  MICROSPEC_RETURN_NOT_OK(UndoTransactionChain(this, txn->id, txn->last_lsn,
                                               /*fix_indexes=*/true, &last,
                                               &clrs));
  wal_->Append(WalRecordType::kAbort, txn->id, last, "");
  return Status::OK();
}

Status Database::LogNewSections(TableInfo* table) {
  if (bees_ == nullptr) return Status::OK();
  bee::RelationBeeState* state = bees_->StateFor(table->id());
  if (state == nullptr || !state->has_tuple_bees()) return Status::OK();
  bee::TupleBeeManager* tb = state->tuple_bees();
  std::lock_guard<std::mutex> guard(wal_sections_mu_);
  int& logged = wal_logged_sections_[table->id()];
  for (int i = logged; i < tb->num_sections(); ++i) {
    std::string payload;
    walenc::EncodeBeeSection(&payload, table->id(), static_cast<uint8_t>(i),
                             tb->section(static_cast<uint8_t>(i))->blob);
    wal_->Append(WalRecordType::kBeeSection, 0, 0, payload);
  }
  logged = tb->num_sections();
  return Status::OK();
}

uint64_t Database::LogDml(WalTxn* txn, WalRecordType type,
                          const std::string& payload, char* page) {
  Wal::AppendResult ar = wal_->Append(type, txn->id, txn->last_lsn, payload);
  txn->last_lsn = ar.start_lsn;
  // Stamped while the caller still pins the page: eviction after this point
  // flushes the log through end_lsn first (the buffer pool's hook).
  if (page != nullptr) PageSetLsn(page, ar.end_lsn);
  return ar.end_lsn;
}

IndexKey Database::KeyFor(const IndexInfo& idx, const Datum* values) {
  IndexKey key;
  for (int c : idx.key_columns) {
    key.part[key.nparts++] = DatumToInt64(values[c]);
  }
  return key;
}

Result<TupleId> Database::Insert(ExecContext* ctx, TableInfo* table,
                                 const Datum* values, const bool* isnull,
                                 WalTxn* txn) {
  if (wal_ != nullptr && txn == nullptr) {
    // Statement-level autocommit: wrap the insert in its own transaction.
    MICROSPEC_ASSIGN_OR_RETURN(WalTxn auto_txn, BeginTxn());
    auto res = Insert(ctx, table, values, isnull, &auto_txn);
    if (!res.ok()) {
      (void)AbortTxn(&auto_txn);
      return res;
    }
    MICROSPEC_RETURN_NOT_OK(CommitTxn(&auto_txn));
    return res;
  }
  const TupleFormer* former = ctx->FormerFor(table);
  MICROSPEC_RETURN_NOT_OK(former->FormTuple(values, isnull, &t_form_buf));
  PageGuard pin;
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId tid,
      table->heap()->Insert(t_form_buf.data(),
                            static_cast<uint32_t>(t_form_buf.size()),
                            wal_ != nullptr ? &pin : nullptr));
  if (wal_ != nullptr) {
    // Any data section this tuple's beeID references must precede the DML
    // record in the log (forming may have interned a new combination).
    MICROSPEC_RETURN_NOT_OK(LogNewSections(table));
    std::string payload;
    walenc::EncodeTupleOp(&payload, table->id(), tid, t_form_buf.data(),
                          static_cast<uint32_t>(t_form_buf.size()));
    LogDml(txn, WalRecordType::kInsert, payload, pin.data());
    pin.Release();
  }
  for (const auto& idx : table->indexes()) {
    MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), tid));
  }
  table->AddTuples(1);
  return tid;
}

Result<TupleId> Database::Update(ExecContext* ctx, TableInfo* table,
                                 TupleId tid, const Datum* values,
                                 const bool* isnull, bool keys_changed,
                                 WalTxn* txn) {
  if (wal_ != nullptr && txn == nullptr) {
    MICROSPEC_ASSIGN_OR_RETURN(WalTxn auto_txn, BeginTxn());
    auto res = Update(ctx, table, tid, values, isnull, keys_changed, &auto_txn);
    if (!res.ok()) {
      (void)AbortTxn(&auto_txn);
      return res;
    }
    MICROSPEC_RETURN_NOT_OK(CommitTxn(&auto_txn));
    return res;
  }
  // Capture the old index keys if they may change.
  std::vector<IndexKey> old_keys;
  if (keys_changed && !table->indexes().empty()) {
    std::vector<Datum> old_values(
        static_cast<size_t>(table->schema().natts()));
    std::vector<char> old_nulls(static_cast<size_t>(table->schema().natts()));
    MICROSPEC_RETURN_NOT_OK(
        ReadTuple(ctx, table, tid, old_values.data(),
                  reinterpret_cast<bool*>(old_nulls.data())));
    for (const auto& idx : table->indexes()) {
      old_keys.push_back(KeyFor(*idx, old_values.data()));
    }
  }
  // The before-image, captured ahead of the mutation: undo restores exactly
  // these bytes.
  std::string old_img;
  if (wal_ != nullptr) {
    old_img.resize(kPageSize);
    uint32_t old_len = 0;
    MICROSPEC_RETURN_NOT_OK(
        table->heap()->Fetch(tid, old_img.data(), kPageSize, &old_len));
    old_img.resize(old_len);
  }

  const TupleFormer* former = ctx->FormerFor(table);
  MICROSPEC_RETURN_NOT_OK(former->FormTuple(values, isnull, &t_form_buf));
  PageGuard pin_old;
  PageGuard pin_new;
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId new_tid,
      table->heap()->Update(tid, t_form_buf.data(),
                            static_cast<uint32_t>(t_form_buf.size()),
                            wal_ != nullptr ? &pin_old : nullptr,
                            wal_ != nullptr ? &pin_new : nullptr));
  if (wal_ != nullptr) {
    MICROSPEC_RETURN_NOT_OK(LogNewSections(table));
    const uint32_t new_len = static_cast<uint32_t>(t_form_buf.size());
    if (new_tid == tid) {
      // In place: one kUpdate record, one page mutation.
      std::string payload;
      walenc::EncodeUpdate(&payload, table->id(), tid, new_tid,
                           old_img.data(),
                           static_cast<uint32_t>(old_img.size()),
                           t_form_buf.data(), new_len);
      LogDml(txn, WalRecordType::kUpdate, payload, pin_new.data());
    } else {
      // Moved: an explicit kDelete + kInsert pair so each record demands
      // exactly one page mutation (storage/wal.h, EncodeUpdate contract).
      std::string del;
      walenc::EncodeTupleOp(&del, table->id(), tid, old_img.data(),
                            static_cast<uint32_t>(old_img.size()));
      LogDml(txn, WalRecordType::kDelete, del, pin_old.data());
      std::string ins;
      walenc::EncodeTupleOp(&ins, table->id(), new_tid, t_form_buf.data(),
                            new_len);
      LogDml(txn, WalRecordType::kInsert, ins, pin_new.data());
    }
    pin_old.Release();
    pin_new.Release();
  }

  size_t i = 0;
  for (const auto& idx : table->indexes()) {
    if (keys_changed) {
      MICROSPEC_RETURN_NOT_OK(idx->btree->Remove(old_keys[i++]));
      MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), new_tid));
    } else if (new_tid != tid) {
      MICROSPEC_RETURN_NOT_OK(
          idx->btree->UpdateTid(KeyFor(*idx, values), new_tid));
    }
  }
  return new_tid;
}

Status Database::Delete(ExecContext* ctx, TableInfo* table, TupleId tid,
                        WalTxn* txn) {
  if (wal_ != nullptr && txn == nullptr) {
    MICROSPEC_ASSIGN_OR_RETURN(WalTxn auto_txn, BeginTxn());
    Status s = Delete(ctx, table, tid, &auto_txn);
    if (!s.ok()) {
      (void)AbortTxn(&auto_txn);
      return s;
    }
    return CommitTxn(&auto_txn);
  }
  if (!table->indexes().empty()) {
    std::vector<Datum> old_values(
        static_cast<size_t>(table->schema().natts()));
    std::vector<char> old_nulls(static_cast<size_t>(table->schema().natts()));
    MICROSPEC_RETURN_NOT_OK(
        ReadTuple(ctx, table, tid, old_values.data(),
                  reinterpret_cast<bool*>(old_nulls.data())));
    for (const auto& idx : table->indexes()) {
      MICROSPEC_RETURN_NOT_OK(idx->btree->Remove(KeyFor(*idx, old_values.data())));
    }
  }
  // Before-image for the kDelete record: undo re-installs these bytes at
  // the preserved slot offset (LogApplyOp::kRestore).
  std::string old_img;
  if (wal_ != nullptr) {
    old_img.resize(kPageSize);
    uint32_t old_len = 0;
    MICROSPEC_RETURN_NOT_OK(
        table->heap()->Fetch(tid, old_img.data(), kPageSize, &old_len));
    old_img.resize(old_len);
  }
  PageGuard pin;
  MICROSPEC_RETURN_NOT_OK(
      table->heap()->Delete(tid, wal_ != nullptr ? &pin : nullptr));
  if (wal_ != nullptr) {
    std::string payload;
    walenc::EncodeTupleOp(&payload, table->id(), tid, old_img.data(),
                          static_cast<uint32_t>(old_img.size()));
    LogDml(txn, WalRecordType::kDelete, payload, pin.data());
    pin.Release();
  }
  table->AddTuples(-1);
  return Status::OK();
}

Status Database::ReadTuple(ExecContext* ctx, TableInfo* table, TupleId tid,
                           Datum* values, bool* isnull) {
  thread_local std::vector<char> buf;
  buf.resize(kPageSize);
  uint32_t len = 0;
  MICROSPEC_RETURN_NOT_OK(
      table->heap()->Fetch(tid, buf.data(), kPageSize, &len));
  ctx->DeformerFor(table)->Deform(buf.data(), table->schema().natts(), values,
                                  isnull);
  // Pointer datums reference the thread-local buffer; they remain valid
  // until this thread's next ReadTuple call.
  return Status::OK();
}

Database::BulkLoader::BulkLoader(Database* db, ExecContext* ctx,
                                 TableInfo* table, WalTxn* txn)
    : db_(db),
      table_(table),
      former_(ctx->FormerFor(table)),
      appender_(table->heap()),
      txn_(txn) {
  if (db_->wal_ != nullptr && txn_ == nullptr) {
    auto res = db_->BeginTxn();
    if (res.ok()) {
      own_txn_ = res.value();
      txn_ = &own_txn_;
      own_active_ = true;
    }
  }
}

Status Database::BulkLoader::Append(const Datum* values, const bool* isnull) {
  MICROSPEC_RETURN_NOT_OK(former_->FormTuple(values, isnull, &buf_));
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId tid,
      appender_.Append(buf_.data(), static_cast<uint32_t>(buf_.size())));
  if (db_->wal_ != nullptr && txn_ != nullptr) {
    MICROSPEC_RETURN_NOT_OK(db_->LogNewSections(table_));
    std::string payload;
    walenc::EncodeTupleOp(&payload, table_->id(), tid, buf_.data(),
                          static_cast<uint32_t>(buf_.size()));
    uint64_t end_lsn = db_->LogDml(txn_, WalRecordType::kInsert, payload,
                                   /*page=*/nullptr);
    // The appender keeps the tail page pinned; stamp it while it is.
    appender_.StampLsn(end_lsn);
  }
  for (const auto& idx : table_->indexes()) {
    MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), tid));
  }
  ++count_;
  return Status::OK();
}

Status Database::BulkLoader::Finish() {
  appender_.Finish();
  table_->AddTuples(static_cast<int64_t>(count_));
  count_ = 0;
  if (own_active_) {
    own_active_ = false;
    return db_->CommitTxn(&own_txn_);
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  // FlushAll honours the WAL rule through the pool's hook; the explicit
  // Flush first just batches it into one sync instead of one per victim.
  if (wal_ != nullptr) MICROSPEC_RETURN_NOT_OK(wal_->Flush());
  MICROSPEC_RETURN_NOT_OK(pool_->FlushAll());
  for (TableInfo* t : catalog_->AllTables()) {
    MICROSPEC_RETURN_NOT_OK(t->heap()->disk_manager()->Sync());
  }
  if (bees_ != nullptr) MICROSPEC_RETURN_NOT_OK(bees_->SaveCache());
  if (wal_ != nullptr) {
    wal_->Append(WalRecordType::kCheckpoint, 0, 0, "");
    MICROSPEC_RETURN_NOT_OK(wal_->Flush());
  }
  return Status::OK();
}

ThreadPool* Database::Executor(int dop) {
  std::lock_guard<std::mutex> guard(executor_mu_);
  if (executor_ == nullptr || executor_threads_ < dop) {
    // Growing replaces the pool (ThreadPool is fixed-size); the old pool's
    // dtor joins its workers, so this is only safe between queries.
    executor_ = std::make_unique<ThreadPool>(dop);
    executor_threads_ = dop;
  }
  return executor_.get();
}

telemetry::TelemetrySnapshot Database::SnapshotTelemetry() {
  telemetry::TelemetrySnapshot snap;
  snap.AddCounter("microspec_pages_read_total",
                  static_cast<double>(stats_.pages_read.Value()));
  snap.AddCounter("microspec_pages_written_total",
                  static_cast<double>(stats_.pages_written.Value()));
  snap.AddCounter("microspec_buffer_hits_total",
                  static_cast<double>(stats_.buffer_hits.Value()));
  snap.AddCounter("microspec_buffer_misses_total",
                  static_cast<double>(stats_.buffer_misses.Value()));
  // All threads, not just this one: forge/ThreadPool workers' deform work
  // counts too (the old thread_local read silently dropped it).
  snap.AddCounter("microspec_work_ops_total",
                  static_cast<double>(workops::TotalAcrossThreads()));
  snap.AddCounter("microspec_wal_records_total",
                  static_cast<double>(stats_.wal_records.Value()));
  snap.AddCounter("microspec_wal_bytes_total",
                  static_cast<double>(stats_.wal_bytes.Value()));
  snap.AddCounter("microspec_wal_fsyncs_total",
                  static_cast<double>(stats_.wal_fsyncs.Value()));
  if (bees_ != nullptr) bees_->FillTelemetry(&snap);
  stats_feedback_.FillSnapshot(&snap);
  tracer_.FillSnapshot(&snap);
  telemetry::Registry::Global().FillSnapshot(&snap);
  return snap;
}

}  // namespace microspec
