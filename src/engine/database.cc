#include "engine/database.h"

#include <sys/stat.h>

#include "storage/tuple.h"

namespace microspec {

namespace {
/// Per-thread scratch for tuple forming, so concurrent TPC-C terminals do
/// not contend on a shared buffer.
thread_local std::string t_form_buf;
}  // namespace

namespace {
/// mkdir -p: creates every missing component of `dir`.
void MakeDirs(const std::string& dir) {
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      ::mkdir(dir.substr(0, i).c_str(), 0755);
    }
  }
}
}  // namespace

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("database dir required");
  }
  MakeDirs(options.dir);
  std::unique_ptr<Database> db(new Database(std::move(options)));
  db->pool_ =
      std::make_unique<BufferPool>(db->options_.buffer_pool_frames, &db->stats_);
  db->catalog_ = std::make_unique<Catalog>(db->options_.dir, db->pool_.get());
  if (db->options_.enable_bees) {
    bee::BeeModuleOptions bo;
    bo.backend = db->options_.backend;
    bo.placement_isolation = db->options_.placement_isolation;
    bo.cache_dir = db->options_.dir + "/bees";
    bo.verify = db->options_.verify_mode;
    bo.forge = db->options_.forge;
    db->bees_ = std::make_unique<bee::BeeModule>(bo);
  }
  return db;
}

Database::~Database() {
  if (pool_ != nullptr) (void)pool_->FlushAll();
}

Result<TableInfo*> Database::CreateTable(const std::string& name,
                                         Schema schema) {
  MICROSPEC_ASSIGN_OR_RETURN(TableInfo * table,
                             catalog_->CreateTable(name, std::move(schema)));
  if (bees_ != nullptr) {
    MICROSPEC_RETURN_NOT_OK(
        bees_->CreateRelationBees(table, options_.enable_tuple_bees));
  }
  // DDL invalidates every cached plan/bee keyed to the previous epoch.
  shared_bees_.Invalidate();
  ddl_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return table;
}

Status Database::DropTable(const std::string& name) {
  TableInfo* table = catalog_->GetTable(name);
  if (table == nullptr) return Status::NotFound("table " + name);
  TableId id = table->id();
  MICROSPEC_RETURN_NOT_OK(catalog_->DropTable(name));
  if (bees_ != nullptr) bees_->CollectTable(id);  // the Bee Collector
  shared_bees_.Invalidate();
  ddl_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

IndexKey Database::KeyFor(const IndexInfo& idx, const Datum* values) {
  IndexKey key;
  for (int c : idx.key_columns) {
    key.part[key.nparts++] = DatumToInt64(values[c]);
  }
  return key;
}

Result<TupleId> Database::Insert(ExecContext* ctx, TableInfo* table,
                                 const Datum* values, const bool* isnull) {
  const TupleFormer* former = ctx->FormerFor(table);
  MICROSPEC_RETURN_NOT_OK(former->FormTuple(values, isnull, &t_form_buf));
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId tid,
      table->heap()->Insert(t_form_buf.data(),
                            static_cast<uint32_t>(t_form_buf.size())));
  for (const auto& idx : table->indexes()) {
    MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), tid));
  }
  table->AddTuples(1);
  return tid;
}

Result<TupleId> Database::Update(ExecContext* ctx, TableInfo* table,
                                 TupleId tid, const Datum* values,
                                 const bool* isnull, bool keys_changed) {
  // Capture the old index keys if they may change.
  std::vector<IndexKey> old_keys;
  if (keys_changed && !table->indexes().empty()) {
    std::vector<Datum> old_values(
        static_cast<size_t>(table->schema().natts()));
    std::vector<char> old_nulls(static_cast<size_t>(table->schema().natts()));
    MICROSPEC_RETURN_NOT_OK(
        ReadTuple(ctx, table, tid, old_values.data(),
                  reinterpret_cast<bool*>(old_nulls.data())));
    for (const auto& idx : table->indexes()) {
      old_keys.push_back(KeyFor(*idx, old_values.data()));
    }
  }

  const TupleFormer* former = ctx->FormerFor(table);
  MICROSPEC_RETURN_NOT_OK(former->FormTuple(values, isnull, &t_form_buf));
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId new_tid,
      table->heap()->Update(tid, t_form_buf.data(),
                            static_cast<uint32_t>(t_form_buf.size())));

  size_t i = 0;
  for (const auto& idx : table->indexes()) {
    if (keys_changed) {
      MICROSPEC_RETURN_NOT_OK(idx->btree->Remove(old_keys[i++]));
      MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), new_tid));
    } else if (new_tid != tid) {
      MICROSPEC_RETURN_NOT_OK(
          idx->btree->UpdateTid(KeyFor(*idx, values), new_tid));
    }
  }
  return new_tid;
}

Status Database::Delete(ExecContext* ctx, TableInfo* table, TupleId tid) {
  if (!table->indexes().empty()) {
    std::vector<Datum> old_values(
        static_cast<size_t>(table->schema().natts()));
    std::vector<char> old_nulls(static_cast<size_t>(table->schema().natts()));
    MICROSPEC_RETURN_NOT_OK(
        ReadTuple(ctx, table, tid, old_values.data(),
                  reinterpret_cast<bool*>(old_nulls.data())));
    for (const auto& idx : table->indexes()) {
      MICROSPEC_RETURN_NOT_OK(idx->btree->Remove(KeyFor(*idx, old_values.data())));
    }
  }
  MICROSPEC_RETURN_NOT_OK(table->heap()->Delete(tid));
  table->AddTuples(-1);
  return Status::OK();
}

Status Database::ReadTuple(ExecContext* ctx, TableInfo* table, TupleId tid,
                           Datum* values, bool* isnull) {
  thread_local std::vector<char> buf;
  buf.resize(kPageSize);
  uint32_t len = 0;
  MICROSPEC_RETURN_NOT_OK(
      table->heap()->Fetch(tid, buf.data(), kPageSize, &len));
  ctx->DeformerFor(table)->Deform(buf.data(), table->schema().natts(), values,
                                  isnull);
  // Pointer datums reference the thread-local buffer; they remain valid
  // until this thread's next ReadTuple call.
  return Status::OK();
}

Database::BulkLoader::BulkLoader(Database* db, ExecContext* ctx,
                                 TableInfo* table)
    : db_(db),
      table_(table),
      former_(ctx->FormerFor(table)),
      appender_(table->heap()) {}

Status Database::BulkLoader::Append(const Datum* values, const bool* isnull) {
  MICROSPEC_RETURN_NOT_OK(former_->FormTuple(values, isnull, &buf_));
  MICROSPEC_ASSIGN_OR_RETURN(
      TupleId tid,
      appender_.Append(buf_.data(), static_cast<uint32_t>(buf_.size())));
  for (const auto& idx : table_->indexes()) {
    MICROSPEC_RETURN_NOT_OK(idx->btree->Insert(KeyFor(*idx, values), tid));
  }
  ++count_;
  return Status::OK();
}

Status Database::BulkLoader::Finish() {
  appender_.Finish();
  table_->AddTuples(static_cast<int64_t>(count_));
  count_ = 0;
  return Status::OK();
}

Status Database::Checkpoint() {
  MICROSPEC_RETURN_NOT_OK(pool_->FlushAll());
  for (TableInfo* t : catalog_->AllTables()) {
    MICROSPEC_RETURN_NOT_OK(t->heap()->disk_manager()->Sync());
  }
  if (bees_ != nullptr) MICROSPEC_RETURN_NOT_OK(bees_->SaveCache());
  return Status::OK();
}

ThreadPool* Database::Executor(int dop) {
  std::lock_guard<std::mutex> guard(executor_mu_);
  if (executor_ == nullptr || executor_threads_ < dop) {
    // Growing replaces the pool (ThreadPool is fixed-size); the old pool's
    // dtor joins its workers, so this is only safe between queries.
    executor_ = std::make_unique<ThreadPool>(dop);
    executor_threads_ = dop;
  }
  return executor_.get();
}

telemetry::TelemetrySnapshot Database::SnapshotTelemetry() {
  telemetry::TelemetrySnapshot snap;
  snap.AddCounter("microspec_pages_read_total",
                  static_cast<double>(stats_.pages_read.Value()));
  snap.AddCounter("microspec_pages_written_total",
                  static_cast<double>(stats_.pages_written.Value()));
  snap.AddCounter("microspec_buffer_hits_total",
                  static_cast<double>(stats_.buffer_hits.Value()));
  snap.AddCounter("microspec_buffer_misses_total",
                  static_cast<double>(stats_.buffer_misses.Value()));
  // All threads, not just this one: forge/ThreadPool workers' deform work
  // counts too (the old thread_local read silently dropped it).
  snap.AddCounter("microspec_work_ops_total",
                  static_cast<double>(workops::TotalAcrossThreads()));
  if (bees_ != nullptr) bees_->FillTelemetry(&snap);
  stats_feedback_.FillSnapshot(&snap);
  tracer_.FillSnapshot(&snap);
  telemetry::Registry::Global().FillSnapshot(&snap);
  return snap;
}

}  // namespace microspec
