#ifndef MICROSPEC_ENGINE_DATABASE_H_
#define MICROSPEC_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bee/bee_module.h"
#include "catalog/catalog.h"
#include "common/io_stats.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "exec/operator.h"
#include "exec/shared_bees.h"
#include "exec/stats_feedback.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace microspec {

/// Database-level configuration. `enable_bees` selects between the stock
/// engine and the bee-enabled engine — the two configurations every
/// experiment in the paper compares.
struct DatabaseOptions {
  std::string dir;
  size_t buffer_pool_frames = 8192;  // 64 MiB at 8 KiB pages
  bool enable_bees = false;
  /// When true, columns annotated low-cardinality get tuple bees at
  /// CREATE TABLE (requires enable_bees).
  bool enable_tuple_bees = false;
  bee::BeeBackend backend = bee::BeeBackend::kProgram;
  bool placement_isolation = true;
  /// Static verification of generated bee routines at creation time
  /// (off | warn | enforce); tests run under enforce.
  bee::VerifyMode verify_mode = bee::VerifyMode::kOff;
  /// Bee forge configuration (kNative only): async background compilation
  /// with hotness-driven promotion by default; `forge.async = false`
  /// restores the paper's compile-inline-at-CREATE-TABLE behaviour.
  bee::ForgeOptions forge;
  /// Degree of parallelism for query execution (morsel-driven; DESIGN.md
  /// "Parallel execution"). The default of 1 builds the exact serial
  /// operator trees this engine always built — no executor pool is even
  /// created.
  int dop = 1;
  /// Pages per morsel for parallel scans; 0 => kDefaultMorselPages.
  uint32_t morsel_pages = 0;
  /// Rows per execution batch (DESIGN.md "Batch execution"). 0 (the
  /// default) keeps the row-at-a-time Next() pipeline; > 0 drives the
  /// NextBatch() path and enables the GCL-B/EVP-B batch bees. Clamped to
  /// kMaxTuplesPerPage — one 8 KiB page's worth of tuples.
  int batch_rows = 0;
  /// Bound on Gather's hand-off queue, in batches per worker; keeps a
  /// fast producer from buffering an unbounded deep copy of the input.
  int gather_max_batches = 4;
  /// Shared bee economy (DESIGN.md "Server front door"): when true, every
  /// context made by this database routes EVP/EVJ creation through one
  /// process-wide QueryBeeCache, so N sessions preparing the same statement
  /// forge exactly one verified bee. Off by default — the library path keeps
  /// the paper's per-query specialization accounting.
  bool share_query_bees = false;
  /// Span tracing (DESIGN.md §10): sample every Nth statement into a full
  /// span tree. 0 (the default) disables tracing entirely — the off path is
  /// one null test per statement, same discipline as telemetry::Enabled().
  uint32_t trace_sample_n = 0;
  /// Completed sampled traces retained for export (ring buffer).
  size_t trace_ring = 16;
  /// Span cap per trace; beyond it spans are counted as dropped, not stored.
  size_t trace_max_spans = 4096;
  /// Statements slower than this land in the slow-query log with their
  /// EXPLAIN ANALYZE tree attached (sampled statements only).
  uint64_t slow_query_ns = 250'000'000;  // 250 ms
  size_t slow_log_capacity = 64;
  /// Workload statistics feedback (DESIGN.md §10): collect per-column
  /// min/max/ndv sketches during scans and observed selectivity per EVP/EVJ
  /// fingerprint, merged into SnapshotTelemetry(). Off by default.
  bool stats_feedback = false;
  /// Write-ahead logging (DESIGN.md §11): physiological WAL + ARIES-lite
  /// restart recovery. Off by default — the benchmarks that predate the WAL
  /// keep their exact I/O profile.
  bool wal_enabled = false;
  /// Group commit: a dedicated flusher batches concurrent commits into one
  /// fdatasync. When false every Commit syncs inline (the 1-commit baseline
  /// bench_wal compares against).
  bool wal_group_commit = true;
  /// Flusher batching window in microseconds (0 = coalesce only what is
  /// already pending when the flusher wakes).
  int wal_group_commit_window_us = 0;
};

/// Handle for one WAL transaction: the id plus the start-LSN of its most
/// recent log record (the head of its prev_lsn chain, walked by rollback
/// and restart undo). Obtained from Database::BeginTxn and threaded through
/// the DML helpers; a null txn autocommits each statement.
struct WalTxn {
  uint64_t id = 0;
  uint64_t last_lsn = 0;
};

/// The engine facade: owns the buffer pool, catalog, and (optionally) the
/// generic bee module; provides DDL, DML with index maintenance, bulk
/// loading, session/query-context creation, and cache control.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);
  ~Database();
  MICROSPEC_DISALLOW_COPY_AND_MOVE(Database);

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  IoStats* io_stats() { return &stats_; }
  /// nullptr for a stock database.
  bee::BeeModule* bees() { return bees_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// DDL: creates the relation and, on a bee-enabled database, its relation
  /// bee (GCL/SCL) and tuple-bee manager — the paper's DDL-compiler hook.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);  // also runs the Bee Collector

  /// Index DDL through the engine so it reaches the WAL: logs a
  /// kCreateIndex record (durable before return) and creates the B+tree.
  /// The index starts empty, exactly like TableInfo::CreateIndex.
  Result<IndexInfo*> CreateIndex(TableInfo* table, const std::string& name,
                                 std::vector<int> key_columns);

  /// nullptr unless options().wal_enabled.
  Wal* wal() { return wal_.get(); }

  /// What restart recovery did when this database was opened (ran == false
  /// when the WAL is disabled or the log was empty).
  const RecoveryStats& last_recovery() const { return last_recovery_; }

  /// --- WAL transactions -----------------------------------------------------
  /// Statement-level autocommit is the default (DML with txn == nullptr);
  /// these give multi-statement atomicity. Requires wal_enabled.

  Result<WalTxn> BeginTxn();
  /// Appends kCommit and blocks until the transaction is durable (one
  /// fdatasync per group-commit batch, not per committer).
  Status CommitTxn(WalTxn* txn);
  /// Runtime rollback: walks the prev_lsn chain backwards applying page
  /// inverses through the relation log bees, writing one CLR per undone
  /// record, fixing indexes, then appends kAbort.
  Status AbortTxn(WalTxn* txn);

  /// kill -9 stand-in for in-suite recovery tests: drops the WAL's pending
  /// buffer and every buffered dirty page, and suppresses the destructor's
  /// flush — on-disk state is exactly what a SIGKILL would have left.
  void SimulateCrashForTests();

  /// Default session for this database: all bee routines on (bee-enabled)
  /// or none (stock).
  SessionOptions DefaultSession() const {
    return options_.enable_bees ? SessionOptions::AllBees()
                                : SessionOptions::Stock();
  }

  std::unique_ptr<ExecContext> MakeContext(const SessionOptions& opts) {
    return MakeContext(opts, options_.dop);
  }
  std::unique_ptr<ExecContext> MakeContext() {
    return MakeContext(DefaultSession());
  }
  /// Context with an explicit degree of parallelism (the per-query override
  /// used by bench_tpch_warm --dop and the parallel tests). dop <= 1 yields
  /// a plain serial context.
  std::unique_ptr<ExecContext> MakeContext(const SessionOptions& opts,
                                           int dop) {
    auto ctx =
        std::make_unique<ExecContext>(catalog_.get(), bees_.get(), opts);
    if (dop > 1) ctx->set_parallel(Executor(dop), dop, options_.morsel_pages);
    ctx->set_batch(options_.batch_rows, options_.gather_max_batches);
    if (options_.share_query_bees) ctx->set_shared_bees(&shared_bees_);
    // Traces are per-statement (installed by sqlfe/server when sampled);
    // the stats-feedback sink is database-wide and rides on every context.
    if (options_.stats_feedback) ctx->set_stats_feedback(&stats_feedback_);
    return ctx;
  }

  /// The database's span tracer (sampling, trace ring, slow-query log).
  /// Always present; inert when trace_sample_n == 0.
  trace::Tracer* tracer() { return &tracer_; }

  /// The workload-statistics sink (observed selectivities, column sketches).
  /// Always present; only fed when options().stats_feedback.
  StatsFeedback* stats_feedback() { return &stats_feedback_; }

  /// The process-wide query-bee cache (populated only when
  /// `share_query_bees`); exposed for the server's telemetry and tests.
  QueryBeeCache* shared_bees() { return &shared_bees_; }

  /// Monotonic DDL counter: bumped by CreateTable/DropTable. Statement
  /// caches key their entries to it, so any DDL invalidates every cached
  /// plan (and this database's shared query bees) at the next lookup.
  uint64_t ddl_epoch() const {
    return ddl_epoch_.load(std::memory_order_acquire);
  }

  /// --- DML helpers (used by the TPC-C transactions and the loaders) ---------
  /// All maintain the table's B+tree indexes.

  Result<TupleId> Insert(ExecContext* ctx, TableInfo* table,
                         const Datum* values, const bool* isnull,
                         WalTxn* txn = nullptr);

  /// Replaces the tuple at `tid` with new values; index entries follow a
  /// moved tuple. Assumes index key columns are unchanged unless
  /// `keys_changed`. An in-place update logs one kUpdate record; a moved
  /// update logs a kDelete + kInsert pair (see storage/wal.h).
  Result<TupleId> Update(ExecContext* ctx, TableInfo* table, TupleId tid,
                         const Datum* values, const bool* isnull,
                         bool keys_changed = false, WalTxn* txn = nullptr);

  Status Delete(ExecContext* ctx, TableInfo* table, TupleId tid,
                WalTxn* txn = nullptr);

  /// Fetches and deforms one tuple (point read).
  Status ReadTuple(ExecContext* ctx, TableInfo* table, TupleId tid,
                   Datum* values, bool* isnull);

  /// High-throughput loading path (Figure 8). Keeps the tail page pinned and
  /// routes every tuple through the session's TupleFormer (SCL bee or stock).
  class BulkLoader {
   public:
    /// With the WAL enabled the loader logs every appended tuple; pass a
    /// transaction to make the whole load atomic, or leave `txn` null and
    /// the loader runs its own (begun here, committed in Finish).
    BulkLoader(Database* db, ExecContext* ctx, TableInfo* table,
               WalTxn* txn = nullptr);
    Status Append(const Datum* values, const bool* isnull);
    Status Finish();

   private:
    Database* db_;
    TableInfo* table_;
    const TupleFormer* former_;
    HeapFile::BulkAppender appender_;
    std::string buf_;
    uint64_t count_ = 0;
    WalTxn* txn_ = nullptr;
    WalTxn own_txn_;  // used when no caller transaction was supplied
    bool own_active_ = false;
  };

  /// Drains the bee forge: every pending native compile has been promoted,
  /// pinned, or cancelled when this returns. No-op on stock/program
  /// databases. Deterministic-measurement and shutdown hook.
  void QuiesceBees() {
    if (bees_ != nullptr) bees_->Quiesce();
  }

  /// Flushes and evicts the entire buffer pool (cold-cache experiments).
  Status DropCaches() { return pool_->DropAll(); }

  /// Flushes dirty pages and persists the bee cache.
  Status Checkpoint();

  /// One merged point-in-time view of everything measurable: this database's
  /// io/buffer counters, the process-wide work-op total (all threads,
  /// including forge workers), per-relation bee tier stats and deform
  /// latency histograms, forge counters, the global registry, and the forge
  /// event trace. Serializes to Prometheus text or JSON — see
  /// telemetry::TelemetrySnapshot.
  telemetry::TelemetrySnapshot SnapshotTelemetry();

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)),
        tracer_(trace::TracerOptions{options_.trace_sample_n,
                                     options_.trace_ring,
                                     options_.trace_max_spans,
                                     options_.slow_query_ns,
                                     options_.slow_log_capacity}) {}

  static IndexKey KeyFor(const IndexInfo& idx, const Datum* values);

  /// Persists tuple-bee data sections this relation grew since the last
  /// call: one non-transactional kBeeSection record per new section,
  /// appended BEFORE the DML record whose tuple references them — a redo
  /// of that tuple always finds its section. No-op without tuple bees.
  Status LogNewSections(TableInfo* table);

  /// Appends one DML record for `txn`, advances the chain head, and stamps
  /// `page` (if non-null) with the record's end-LSN while it is still
  /// pinned — the WAL rule's ordering point.
  uint64_t LogDml(WalTxn* txn, WalRecordType type, const std::string& payload,
                  char* page);

  /// Lazily creates (or grows) the shared query-executor pool so it has at
  /// least `dop` threads. Growing replaces the pool, so it is only safe
  /// between queries — contexts hold the pool pointer for their lifetime.
  ThreadPool* Executor(int dop);

  friend Result<RecoveryStats> RunRecovery(Database* db);
  friend Status UndoTransactionChain(Database* db, uint64_t txn_id,
                                     uint64_t last_lsn, bool fix_indexes,
                                     uint64_t* out_last_lsn,
                                     uint64_t* clrs_appended);

  DatabaseOptions options_;  // before tracer_: its ctor reads the options
  trace::Tracer tracer_;
  StatsFeedback stats_feedback_;
  IoStats stats_;
  /// Before pool_ (destroyed after it): catalog/pool teardown may write back
  /// dirty pages, and the pool's flush hook targets this WAL.
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<bee::BeeModule> bees_;
  QueryBeeCache shared_bees_;
  std::atomic<uint64_t> ddl_epoch_{0};
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<bool> crashed_{false};  // SimulateCrashForTests ran
  RecoveryStats last_recovery_;
  /// Sections already persisted per relation (kBeeSection records appended),
  /// so each new section is logged exactly once.
  std::mutex wal_sections_mu_;
  std::unordered_map<TableId, int> wal_logged_sections_;
  std::mutex executor_mu_;
  int executor_threads_ = 0;
  /// Declared last: destroyed first, so in-flight worker tasks finish (the
  /// pool dtor joins) before the catalog/pool/bee module they use go away.
  std::unique_ptr<ThreadPool> executor_;
};

}  // namespace microspec

#endif  // MICROSPEC_ENGINE_DATABASE_H_
