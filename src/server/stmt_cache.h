#ifndef MICROSPEC_SERVER_STMT_CACHE_H_
#define MICROSPEC_SERVER_STMT_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/macros.h"
#include "common/result.h"
#include "sqlfe/ast.h"

namespace microspec::server {

/// Normalizes SQL text into the cache's canonical form: whitespace runs
/// collapse to one space, characters outside quoted literals fold to lower
/// case, and a trailing semicolon is dropped — so "SELECT  * FROM t;" and
/// "select * from t" share one cache entry (and therefore one parse and one
/// set of forged query bees). Quoted literal bytes pass through untouched.
std::string NormalizeSql(const std::string& sql);

/// --- Process-wide prepared-statement cache ----------------------------------
/// Maps normalized SQL to its parsed AST, shared across every session of the
/// server. The entry is built exactly once per distinct statement shape
/// (per-entry once-flag — K sessions racing on the same PARSE block on one
/// parse, never duplicate it), LRU-evicted beyond `capacity`, and stamped
/// with the database's DDL epoch at build time: any CREATE/DROP TABLE makes
/// every older entry stale, so the next lookup rebuilds against the new
/// catalog instead of executing a plan that binds dropped tables.
///
/// This is the first level of the shared bee economy: the second is the
/// engine's QueryBeeCache, which the cached statement's executions feed.
/// Each entry records a "stmt:<hash>" kQueued/kSucceeded pair in the forge
/// event trace, giving tests exact build-once accounting.
///
/// Parse failures are cached negatively (the entry holds the error), so a
/// client replaying a malformed statement does not reparse it each time;
/// such entries count toward capacity and age out like any other.
class StmtCache {
 public:
  explicit StmtCache(size_t capacity) : capacity_(capacity) {}
  MICROSPEC_DISALLOW_COPY_AND_MOVE(StmtCache);

  /// Returns the parsed statement for `sql` (normalizing first), parsing
  /// and inserting on miss. `ddl_epoch` is the database's current epoch:
  /// entries stamped with an older epoch are treated as misses and rebuilt.
  /// The returned Statement is immutable and shared; it stays valid after
  /// eviction or invalidation for as long as the caller holds the pointer.
  Result<std::shared_ptr<const sqlfe::Statement>> GetOrParse(
      const std::string& sql, uint64_t ddl_epoch);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;     // includes stale-epoch rebuilds
    uint64_t evictions = 0;  // capacity evictions (not epoch invalidations)
    size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const sqlfe::Statement> stmt;  // null if parse failed
    Status error;      // set when stmt == nullptr
    uint64_t epoch = 0;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  size_t capacity_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace microspec::server

#endif  // MICROSPEC_SERVER_STMT_CACHE_H_
