#ifndef MICROSPEC_SERVER_WIRE_H_
#define MICROSPEC_SERVER_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace microspec::server {

/// --- Wire protocol ----------------------------------------------------------
/// A PostgreSQL-subset-in-spirit message protocol: every message is one
/// frame of
///
///   [1 byte type] [u32 little-endian payload length] [payload bytes]
///
/// Client-to-server types:
///   'Q'  SimpleQuery    payload = SQL text (raw bytes)
///   'P'  Parse          payload = strings(statement name, SQL text)
///   'B'  Bind           payload = strings(statement name)
///   'E'  Execute        payload = strings(statement name)
///   'C'  CloseStmt      payload = strings(statement name)
///   'X'  Terminate      payload = empty
///
/// Server-to-client types:
///   'T'  RowDescription payload = strings(column names)
///   'D'  DataRow        payload = strings(cell texts; NULL cells use the
///                       0xFFFFFFFF length sentinel)
///   'C'  CommandComplete payload = tag, e.g. "SELECT 3", "INSERT 2"
///   'E'  Error          payload = message text
///   'Z'  ReadyForQuery  payload = 1 byte session state ('I' = idle)
///   '1'  ParseComplete  payload = empty
///   '2'  BindComplete   payload = empty
///   '3'  CloseComplete  payload = empty
///
/// The structured payload ("strings(...)") is a u16 field count followed by
/// that many [u32 length][bytes] fields; the length 0xFFFFFFFF encodes SQL
/// NULL (a field that is absent rather than empty). Frames are length-
/// prefixed, so the reader never scans for terminators; a frame longer than
/// the configured maximum is a protocol error and closes the connection
/// (after an oversized or garbage length the stream cannot be resynced).

/// Frame type bytes, as constants so call sites read symbolically.
inline constexpr char kMsgSimpleQuery = 'Q';
inline constexpr char kMsgParse = 'P';
inline constexpr char kMsgBind = 'B';
inline constexpr char kMsgExecute = 'E';
inline constexpr char kMsgCloseStmt = 'C';
inline constexpr char kMsgTerminate = 'X';

inline constexpr char kMsgRowDescription = 'T';
inline constexpr char kMsgDataRow = 'D';
inline constexpr char kMsgCommandComplete = 'C';
inline constexpr char kMsgError = 'E';
inline constexpr char kMsgReady = 'Z';
inline constexpr char kMsgParseComplete = '1';
inline constexpr char kMsgBindComplete = '2';
inline constexpr char kMsgCloseComplete = '3';

/// The NULL-cell length sentinel in DataRow payloads.
inline constexpr uint32_t kNullField = 0xFFFFFFFFu;

/// One decoded frame.
struct Frame {
  char type = 0;
  std::string payload;
};

/// One structured-payload field: bytes, or SQL NULL.
struct Field {
  std::string text;
  bool is_null = false;
};

/// Encodes a frame (header + payload) into `out` (appended).
void EncodeFrame(char type, std::string_view payload, std::string* out);

/// Builds a structured payload from fields.
std::string EncodeFields(const std::vector<Field>& fields);
/// Convenience for all-non-NULL fields.
std::string EncodeStrings(const std::vector<std::string>& strings);

/// Parses a structured payload. Fails on truncated or trailing bytes.
Status DecodeFields(std::string_view payload, std::vector<Field>* out);

/// --- Blocking socket framing ------------------------------------------------
/// Reads exactly one frame from `fd`. `max_payload` bounds the declared
/// length (protocol guard). Returns:
///   OK          — *frame holds the message
///   NotFound    — orderly EOF before any header byte (peer closed idle)
///   InvalidArgument — malformed header (oversized length); unrecoverable
///   IOError     — read error / EOF mid-frame
/// `stop` (nullable, polled ~10x/sec) aborts a blocked read with
/// ResourceExhausted("shutdown") — the graceful-shutdown hook for sessions
/// parked in recv().
Status ReadFrame(int fd, size_t max_payload, Frame* frame,
                 const std::atomic<bool>* stop = nullptr);

/// Writes all of `data` to `fd` (handles short writes; EPIPE => IOError).
Status WriteAll(int fd, std::string_view data);

/// Encode-and-send convenience.
Status WriteFrame(int fd, char type, std::string_view payload);

}  // namespace microspec::server

#endif  // MICROSPEC_SERVER_WIRE_H_
