#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace microspec::server {

namespace {
/// Client-side frames can be large (a whole result set row); keep parity
/// with the server default.
constexpr size_t kClientMaxPayload = 1 << 20;

Status ConnectTcp(const std::string& host, int port, int* out_fd) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status s = Status::IoError(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  return Status::OK();
}
}  // namespace

Status Client::Connect(const std::string& host, int port) {
  Close();
  return ConnectTcp(host, port, &fd_);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendFrame(char type, std::string_view payload) {
  if (fd_ < 0) return Status::IoError("not connected");
  return WriteFrame(fd_, type, payload);
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::IoError("not connected");
  return WriteAll(fd_, bytes);
}

Result<Frame> Client::ReadOne() {
  if (fd_ < 0) return Status::IoError("not connected");
  Frame frame;
  MICROSPEC_RETURN_NOT_OK(ReadFrame(fd_, kClientMaxPayload, &frame));
  return frame;
}

Result<QueryResult> Client::ReadQueryResponse() {
  QueryResult result;
  std::string error;
  for (;;) {
    MICROSPEC_ASSIGN_OR_RETURN(Frame frame, ReadOne());
    switch (frame.type) {
      case kMsgRowDescription: {
        std::vector<Field> fields;
        MICROSPEC_RETURN_NOT_OK(DecodeFields(frame.payload, &fields));
        for (Field& f : fields) result.columns.push_back(std::move(f.text));
        break;
      }
      case kMsgDataRow: {
        std::vector<Field> fields;
        MICROSPEC_RETURN_NOT_OK(DecodeFields(frame.payload, &fields));
        std::vector<std::string> row;
        row.reserve(fields.size());
        for (Field& f : fields) {
          row.push_back(f.is_null ? "NULL" : std::move(f.text));
        }
        result.rows.push_back(std::move(row));
        break;
      }
      case kMsgCommandComplete:
        result.tag = frame.payload;
        break;
      case kMsgError:
        error = frame.payload;
        break;
      case kMsgReady:
        if (!error.empty()) return Status::Internal(error);
        return result;
      default:
        return Status::InvalidArgument(
            std::string("unexpected frame type '") + frame.type + "'");
    }
  }
}

Result<QueryResult> Client::Query(const std::string& sql) {
  MICROSPEC_RETURN_NOT_OK(SendFrame(kMsgSimpleQuery, sql));
  return ReadQueryResponse();
}

Status Client::Parse(const std::string& name, const std::string& sql) {
  MICROSPEC_RETURN_NOT_OK(
      SendFrame(kMsgParse, EncodeStrings({name, sql})));
  MICROSPEC_ASSIGN_OR_RETURN(Frame frame, ReadOne());
  if (frame.type == kMsgError) return Status::Internal(frame.payload);
  if (frame.type != kMsgParseComplete) {
    return Status::InvalidArgument("expected ParseComplete");
  }
  return Status::OK();
}

Status Client::Bind(const std::string& name) {
  MICROSPEC_RETURN_NOT_OK(SendFrame(kMsgBind, EncodeStrings({name})));
  MICROSPEC_ASSIGN_OR_RETURN(Frame frame, ReadOne());
  if (frame.type == kMsgError) return Status::Internal(frame.payload);
  if (frame.type != kMsgBindComplete) {
    return Status::InvalidArgument("expected BindComplete");
  }
  return Status::OK();
}

Result<QueryResult> Client::Execute(const std::string& name) {
  MICROSPEC_RETURN_NOT_OK(SendFrame(kMsgExecute, EncodeStrings({name})));
  return ReadQueryResponse();
}

Status Client::CloseStmt(const std::string& name) {
  MICROSPEC_RETURN_NOT_OK(SendFrame(kMsgCloseStmt, EncodeStrings({name})));
  MICROSPEC_ASSIGN_OR_RETURN(Frame frame, ReadOne());
  if (frame.type == kMsgError) return Status::Internal(frame.payload);
  if (frame.type != kMsgCloseComplete) {
    return Status::InvalidArgument("expected CloseComplete");
  }
  return Status::OK();
}

void Client::Terminate() {
  if (fd_ < 0) return;
  (void)WriteFrame(fd_, kMsgTerminate, "");
  Close();
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  int fd = -1;
  MICROSPEC_RETURN_NOT_OK(ConnectTcp(host, port, &fd));
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  Status s = WriteAll(fd, request);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    response.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    const size_t line_end = response.find("\r\n");
    return Status::IoError("HTTP error: " + response.substr(0, line_end));
  }
  return response.substr(header_end + 4);
}

}  // namespace microspec::server
