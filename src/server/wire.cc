#include "server/wire.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/macros.h"

namespace microspec::server {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void AppendU16(std::string* out, uint16_t v) {
  char b[2];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  out->append(b, 2);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(
      static_cast<unsigned char>(p[0]) |
      static_cast<unsigned char>(p[1]) << 8);
}

/// Blocking read of exactly `n` bytes. `header_wait` selects the behavior at
/// position 0: an orderly EOF there is NotFound (idle peer closed), while
/// EOF mid-read is always a truncated frame (IOError). The stop flag is
/// polled between reads so a parked session notices server shutdown.
Status ReadExact(int fd, char* buf, size_t n, bool eof_ok_at_start,
                 const std::atomic<bool>* stop) {
  size_t got = 0;
  while (got < n) {
    if (stop != nullptr) {
      if (stop->load(std::memory_order_acquire)) {
        return Status(StatusCode::kResourceExhausted, "shutdown");
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("poll: ") + strerror(errno));
      }
      if (pr == 0) continue;  // timeout; re-check stop
    }
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return Status::NotFound("eof");
      return Status::IoError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

void EncodeFrame(char type, std::string_view payload, std::string* out) {
  out->push_back(type);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

std::string EncodeFields(const std::vector<Field>& fields) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(fields.size()));
  for (const Field& f : fields) {
    if (f.is_null) {
      AppendU32(&out, kNullField);
    } else {
      AppendU32(&out, static_cast<uint32_t>(f.text.size()));
      out += f.text;
    }
  }
  return out;
}

std::string EncodeStrings(const std::vector<std::string>& strings) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(strings.size()));
  for (const std::string& s : strings) {
    AppendU32(&out, static_cast<uint32_t>(s.size()));
    out += s;
  }
  return out;
}

Status DecodeFields(std::string_view payload, std::vector<Field>* out) {
  out->clear();
  if (payload.size() < 2) return Status::InvalidArgument("short payload");
  size_t pos = 0;
  uint16_t count = ReadU16(payload.data());
  pos += 2;
  out->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    if (payload.size() - pos < 4) {
      return Status::InvalidArgument("truncated field length");
    }
    uint32_t len = ReadU32(payload.data() + pos);
    pos += 4;
    Field f;
    if (len == kNullField) {
      f.is_null = true;
    } else {
      if (payload.size() - pos < len) {
        return Status::InvalidArgument("truncated field bytes");
      }
      f.text.assign(payload.data() + pos, len);
      pos += len;
    }
    out->push_back(std::move(f));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("trailing bytes after fields");
  }
  return Status::OK();
}

Status ReadFrame(int fd, size_t max_payload, Frame* frame,
                 const std::atomic<bool>* stop) {
  char header[5];
  MICROSPEC_RETURN_NOT_OK(
      ReadExact(fd, header, sizeof(header), /*eof_ok_at_start=*/true, stop));
  frame->type = header[0];
  uint32_t len = ReadU32(header + 1);
  if (len > max_payload) {
    return Status::InvalidArgument("frame exceeds max payload size");
  }
  frame->payload.resize(len);
  if (len > 0) {
    MICROSPEC_RETURN_NOT_OK(ReadExact(fd, frame->payload.data(), len,
                                      /*eof_ok_at_start=*/false, stop));
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t r = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFrame(int fd, char type, std::string_view payload) {
  std::string buf;
  buf.reserve(5 + payload.size());
  EncodeFrame(type, payload, &buf);
  return WriteAll(fd, buf);
}

}  // namespace microspec::server
