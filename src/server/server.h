#ifndef MICROSPEC_SERVER_SERVER_H_
#define MICROSPEC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/thread_pool.h"
#include "engine/database.h"
#include "server/stmt_cache.h"
#include "server/wire.h"

namespace microspec::server {

/// Server configuration. The defaults suit tests: an ephemeral port on
/// loopback that the kernel assigns (read it back via Server::port()).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port.
  int port = 0;
  /// Admission control: at most `max_sessions` connections execute
  /// concurrently; up to `max_pending` more wait in the accept queue for a
  /// session slot; beyond that new connections get an error frame and are
  /// closed immediately.
  int max_sessions = 8;
  int max_pending = 32;
  /// Largest accepted frame payload. A declared length above this is a
  /// protocol error and closes the connection.
  size_t max_frame_bytes = 1 << 20;  // 1 MiB
  /// Capacity of the shared prepared-statement cache (entries).
  size_t stmt_cache_capacity = 256;
};

/// --- SQL server front door --------------------------------------------------
/// A TCP listener speaking the length-prefixed wire protocol of
/// server/wire.h, multiplexing N client sessions onto the engine:
///
///   * sessions run as blocking tasks on a fixed ThreadPool of
///     `max_sessions` workers — the pool itself is the concurrency limiter,
///     and the explicit in-system counter bounds the wait queue
///     (admission control);
///   * every session parses through one process-wide StmtCache, and (when
///     the database was opened with `share_query_bees`) executes through
///     the engine's shared QueryBeeCache — so K sessions preparing the same
///     statement cost one parse and one verified bee specialization;
///   * the same listener answers HTTP "GET /metrics" with the Prometheus
///     rendering of Database::SnapshotTelemetry(), and "GET /trace" with the
///     tracer's ring as Chrome trace_event JSON (loads in chrome://tracing /
///     Perfetto) — the first received byte ('G', never a valid client frame
///     type) selects the HTTP path;
///   * when the database samples statements (trace_sample_n > 0), a sampled
///     statement's trace gets a session root span started at session start,
///     with the connection's admission-queue wait attributed under it, so
///     the exported tree connects session → statement → operators → bees;
///   * Shutdown() drains gracefully: stop accepting, abort idle sessions at
///     their next poll tick (in-flight statements finish and their results
///     are delivered first), wait until every session has exited, then
///     quiesce the bee forge.
///
/// Telemetry (all in telemetry::Registry::Global(), so they appear in
/// /metrics, bee_inspector --metrics, and BENCH JSON alike):
///   microspec_server_sessions_active   gauge
///   microspec_server_queries_total     counter (statements executed)
///   microspec_server_query_ns          histogram (per-statement latency)
///   microspec_server_admission_wait_ns histogram (accept -> session start)
///   microspec_server_slow_queries_total counter (over the slow threshold)
///   microspec_stmt_cache_{hits,misses,evictions}_total  counters
class Server {
 public:
  Server(Database* db, ServerOptions options);
  ~Server();  // implies Shutdown()
  MICROSPEC_DISALLOW_COPY_AND_MOVE(Server);

  /// Binds, listens, and starts the accept loop. Fails on bind errors
  /// (e.g. port in use).
  Status Start();

  /// The bound TCP port (resolves ephemeral binds); 0 before Start().
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Graceful drain, idempotent: stop accepting, finish in-flight
  /// statements, close every session, quiesce the bee forge. Returns when
  /// the server is fully stopped.
  void Shutdown();

  /// Sessions currently executing or waiting for a slot.
  int sessions_in_system() const {
    return in_system_.load(std::memory_order_acquire);
  }

  StmtCache* stmt_cache() { return &stmt_cache_; }

 private:
  /// Connection timing the trace layer folds into sampled statements: the
  /// accept→start gap is the session's admission-queue wait.
  struct SessionClock {
    uint64_t accepted_ns = 0;
    uint64_t started_ns = 0;
  };

  void AcceptLoop();
  void RunSession(int fd, uint64_t accepted_ns);
  /// One client request frame; returns false when the session should end.
  bool HandleFrame(int fd, ExecContext* ctx, const SessionClock& clock,
                   const Frame& frame,
                   std::unordered_map<std::string,
                                      std::shared_ptr<const sqlfe::Statement>>*
                       prepared,
                   std::unordered_map<std::string, bool>* bound);
  /// Executes one statement and streams T/D*/C frames (or an E frame).
  /// `sql` and the parse window are optional (null/zero for prepared
  /// Execute, whose parse happened at Parse time).
  void RunStatement(int fd, ExecContext* ctx, const SessionClock& clock,
                    const sqlfe::Statement& stmt, const std::string* sql,
                    uint64_t parse_start_ns, uint64_t parse_end_ns);
  void ServeHttp(int fd);

  Database* db_;
  ServerOptions options_;
  StmtCache stmt_cache_;
  int listen_fd_ = -1;
  std::atomic<int> port_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> in_system_{0};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> session_pool_;
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;
};

}  // namespace microspec::server

#endif  // MICROSPEC_SERVER_SERVER_H_
