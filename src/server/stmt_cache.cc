#include "server/stmt_cache.h"

#include <cctype>
#include <cstdio>

#include "common/hash.h"
#include "common/telemetry.h"
#include "sqlfe/parser.h"

namespace microspec::server {

namespace {

telemetry::Counter* HitCounter() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_stmt_cache_hits_total");
  return c;
}

telemetry::Counter* MissCounter() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_stmt_cache_misses_total");
  return c;
}

telemetry::Counter* EvictionCounter() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_stmt_cache_evictions_total");
  return c;
}

/// "stmt:" plus the normalized statement's hash — the fixed-width handle
/// this cache records into the forge event trace.
std::string TraceName(const std::string& normalized) {
  char buf[32];
  std::snprintf(
      buf, sizeof(buf), "stmt:%016llx",
      static_cast<unsigned long long>(
          Hash64(normalized.data(), normalized.size())));
  return buf;
}

}  // namespace

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;  // inside a '...' literal
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\'') {
        // '' is an escaped quote, not a terminator.
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back(sql[++i]);
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out.push_back(c);
      continue;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

Result<std::shared_ptr<const sqlfe::Statement>> StmtCache::GetOrParse(
    const std::string& sql, uint64_t ddl_epoch) {
  const std::string key = NormalizeSql(sql);
  std::shared_ptr<Entry> entry;
  bool created = false;

  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second->epoch != ddl_epoch) {
      // Stale: DDL happened since this entry was parsed. Drop and rebuild.
      lru_.erase(it->second->lru_it);
      entries_.erase(it);
      it = entries_.end();
    }
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entry->epoch = ddl_epoch;
      lru_.push_front(key);
      entry->lru_it = lru_.begin();
      entries_.emplace(key, entry);
      created = true;
      ++misses_;
      while (entries_.size() > capacity_) {
        const std::string& victim = lru_.back();
        entries_.erase(victim);
        lru_.pop_back();
        ++evictions_;
        EvictionCounter()->Add(1);
      }
    } else {
      entry = it->second;
      lru_.splice(lru_.begin(), lru_, entry->lru_it);  // touch
      ++hits_;
    }
  }
  if (created) {
    MissCounter()->Add(1);
  } else {
    HitCounter()->Add(1);
  }

  // Parse outside the cache lock; racing sessions on the same fresh entry
  // serialize on its once-flag only.
  std::call_once(entry->once, [&] {
    telemetry::EventTrace* trace = telemetry::Registry::Global().forge_trace();
    const std::string name = TraceName(key);
    trace->Record(telemetry::ForgeEventKind::kQueued, name);
    uint64_t t0 = telemetry::NowNs();
    Result<sqlfe::Statement> parsed = sqlfe::Parse(key);
    if (parsed.ok()) {
      entry->stmt = std::make_shared<const sqlfe::Statement>(
          std::move(parsed.MoveValue()));
      trace->Record(telemetry::ForgeEventKind::kSucceeded, name,
                    telemetry::NowNs() - t0);
    } else {
      entry->error = parsed.status();
      trace->Record(telemetry::ForgeEventKind::kCancelled, name,
                    telemetry::NowNs() - t0, parsed.status().message());
    }
  });

  if (entry->stmt == nullptr) return entry->error;
  return std::shared_ptr<const sqlfe::Statement>(entry->stmt);
}

StmtCache::Stats StmtCache::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  return s;
}

}  // namespace microspec::server
