#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/telemetry.h"
#include "sqlfe/engine.h"

namespace microspec::server {

namespace {

telemetry::Gauge* SessionsActive() {
  static telemetry::Gauge* g = telemetry::Registry::Global().GetGauge(
      "microspec_server_sessions_active");
  return g;
}

telemetry::Counter* QueriesTotal() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_server_queries_total");
  return c;
}

telemetry::Histogram* QueryLatency() {
  static telemetry::Histogram* h = telemetry::Registry::Global().GetHistogram(
      "microspec_server_query_ns");
  return h;
}

telemetry::Histogram* AdmissionWait() {
  static telemetry::Histogram* h = telemetry::Registry::Global().GetHistogram(
      "microspec_server_admission_wait_ns");
  return h;
}

telemetry::Counter* SlowQueriesTotal() {
  static telemetry::Counter* c = telemetry::Registry::Global().GetCounter(
      "microspec_server_slow_queries_total");
  return c;
}

/// PostgreSQL-style completion tag for one executed statement.
std::string CommandTag(const sqlfe::Statement& stmt,
                       const sqlfe::SqlResult& result) {
  switch (stmt.kind) {
    case sqlfe::Statement::Kind::kCreateTable:
      return "CREATE TABLE";
    case sqlfe::Statement::Kind::kInsert:
      return "INSERT " + std::to_string(result.affected);
    case sqlfe::Statement::Kind::kSelect:
      return "SELECT " + std::to_string(result.rows.size());
  }
  return "OK";
}

}  // namespace

Server::Server(Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      stmt_cache_(options_.stmt_cache_capacity) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::IoError(std::string("bind: ") + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.max_sessions + options_.max_pending) !=
      0) {
    Status s = Status::IoError(std::string("listen: ") + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &alen) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }

  session_pool_ = std::make_unique<ThreadPool>(options_.max_sessions);
  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const uint64_t accepted_ns = telemetry::NowNs();

    // Admission control: run now, wait for a slot, or bounce.
    int in_system = in_system_.load(std::memory_order_acquire);
    bool admitted = false;
    while (in_system < options_.max_sessions + options_.max_pending) {
      if (in_system_.compare_exchange_weak(in_system, in_system + 1,
                                           std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      (void)WriteFrame(fd, kMsgError, "server busy: admission queue full");
      ::close(fd);
      continue;
    }
    session_pool_->Submit([this, fd, accepted_ns] {
      RunSession(fd, accepted_ns);
    });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::ServeHttp(int fd) {
  // Read the request head (bounded); we only need the request line.
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    head.append(buf, static_cast<size_t>(r));
  }
  std::string body;
  std::string status_line = "HTTP/1.1 200 OK";
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  std::string content_type = "text/plain; version=0.0.4";
  if (request_line.rfind("GET /metrics", 0) == 0) {
    body = db_->SnapshotTelemetry().ToPrometheusText();
  } else if (request_line.rfind("GET /trace", 0) == 0) {
    // The tracer's ring as Chrome trace_event JSON — save and load in
    // chrome://tracing or https://ui.perfetto.dev.
    body = db_->tracer()->ChromeTraceJson();
    content_type = "application/json";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  (void)WriteAll(fd, response);
}

void Server::RunSession(int fd, uint64_t accepted_ns) {
  SessionClock clock;
  clock.accepted_ns = accepted_ns;
  clock.started_ns = telemetry::NowNs();
  AdmissionWait()->Observe(clock.started_ns - clock.accepted_ns);
  // If shutdown began while this session waited for a slot, bounce it
  // without reading — drain must not depend on client behavior.
  if (stop_.load(std::memory_order_acquire)) {
    (void)WriteFrame(fd, kMsgError, "server shutting down");
  } else {
    // Sniff (without consuming) the first byte: 'G' selects the HTTP
    // /metrics path ('G' is not a client frame type), anything else is the
    // wire protocol.
    char first = 0;
    ssize_t r;
    do {
      r = ::recv(fd, &first, 1, MSG_PEEK);
    } while (r < 0 && errno == EINTR);
    if (r == 1 && first == 'G') {
      ServeHttp(fd);
    } else if (r == 1) {
      // Only wire-protocol sessions count toward the gauge; an HTTP scrape
      // must observe the same numbers a direct SnapshotTelemetry() returns.
      SessionsActive()->Add(1);
      std::unordered_map<std::string, std::shared_ptr<const sqlfe::Statement>>
          prepared;
      std::unordered_map<std::string, bool> bound;
      std::unique_ptr<ExecContext> ctx = db_->MakeContext();
      bool keep_going = true;
      while (keep_going && !stop_.load(std::memory_order_acquire)) {
        Frame frame;
        Status s = ReadFrame(fd, options_.max_frame_bytes, &frame, &stop_);
        if (!s.ok()) {
          if (s.code() == StatusCode::kResourceExhausted) {
            (void)WriteFrame(fd, kMsgError, "server shutting down");
          } else if (s.code() == StatusCode::kInvalidArgument) {
            (void)WriteFrame(fd, kMsgError, s.message());
          }
          break;
        }
        keep_going = HandleFrame(fd, ctx.get(), clock, frame, &prepared,
                                 &bound);
      }
      SessionsActive()->Add(-1);
    }
  }

  ::close(fd);
  {
    std::lock_guard<std::mutex> guard(drain_mutex_);
    in_system_.fetch_sub(1, std::memory_order_acq_rel);
  }
  drained_.notify_all();
}

bool Server::HandleFrame(
    int fd, ExecContext* ctx, const SessionClock& clock, const Frame& frame,
    std::unordered_map<std::string, std::shared_ptr<const sqlfe::Statement>>*
        prepared,
    std::unordered_map<std::string, bool>* bound) {
  switch (frame.type) {
    case kMsgSimpleQuery: {
      // The parse window covers the statement-cache lookup too: a cache hit
      // shows up in the trace as a near-zero parse span, which is exactly
      // the cache's value made visible.
      const uint64_t parse_start = telemetry::NowNs();
      Result<std::shared_ptr<const sqlfe::Statement>> stmt =
          stmt_cache_.GetOrParse(frame.payload, db_->ddl_epoch());
      const uint64_t parse_end = telemetry::NowNs();
      if (!stmt.ok()) {
        (void)WriteFrame(fd, kMsgError, stmt.status().ToString());
      } else {
        RunStatement(fd, ctx, clock, **stmt, &frame.payload, parse_start,
                     parse_end);
      }
      (void)WriteFrame(fd, kMsgReady, "I");
      return true;
    }
    case kMsgParse: {
      std::vector<Field> fields;
      Status s = DecodeFields(frame.payload, &fields);
      if (!s.ok() || fields.size() != 2 || fields[0].is_null ||
          fields[1].is_null) {
        (void)WriteFrame(fd, kMsgError, "malformed Parse message");
        return false;  // protocol error: drop the connection
      }
      Result<std::shared_ptr<const sqlfe::Statement>> stmt =
          stmt_cache_.GetOrParse(fields[1].text, db_->ddl_epoch());
      if (!stmt.ok()) {
        (void)WriteFrame(fd, kMsgError, stmt.status().ToString());
        return true;
      }
      (*prepared)[fields[0].text] = stmt.MoveValue();
      bound->erase(fields[0].text);
      (void)WriteFrame(fd, kMsgParseComplete, "");
      return true;
    }
    case kMsgBind: {
      std::vector<Field> fields;
      Status s = DecodeFields(frame.payload, &fields);
      if (!s.ok() || fields.size() != 1 || fields[0].is_null) {
        (void)WriteFrame(fd, kMsgError, "malformed Bind message");
        return false;
      }
      if (prepared->find(fields[0].text) == prepared->end()) {
        (void)WriteFrame(fd, kMsgError,
                         "unknown statement " + fields[0].text);
        return true;
      }
      (*bound)[fields[0].text] = true;
      (void)WriteFrame(fd, kMsgBindComplete, "");
      return true;
    }
    case kMsgExecute: {
      std::vector<Field> fields;
      Status s = DecodeFields(frame.payload, &fields);
      if (!s.ok() || fields.size() != 1 || fields[0].is_null) {
        (void)WriteFrame(fd, kMsgError, "malformed Execute message");
        return false;
      }
      auto it = prepared->find(fields[0].text);
      if (it == prepared->end()) {
        (void)WriteFrame(fd, kMsgError,
                         "unknown statement " + fields[0].text);
      } else if (!(*bound)[fields[0].text]) {
        (void)WriteFrame(fd, kMsgError,
                         "statement " + fields[0].text + " not bound");
      } else {
        RunStatement(fd, ctx, clock, *it->second, /*sql=*/nullptr,
                     /*parse_start_ns=*/0, /*parse_end_ns=*/0);
      }
      (void)WriteFrame(fd, kMsgReady, "I");
      return true;
    }
    case kMsgCloseStmt: {
      std::vector<Field> fields;
      Status s = DecodeFields(frame.payload, &fields);
      if (!s.ok() || fields.size() != 1 || fields[0].is_null) {
        (void)WriteFrame(fd, kMsgError, "malformed Close message");
        return false;
      }
      prepared->erase(fields[0].text);
      bound->erase(fields[0].text);
      (void)WriteFrame(fd, kMsgCloseComplete, "");
      return true;
    }
    case kMsgTerminate:
      return false;
    default:
      (void)WriteFrame(
          fd, kMsgError,
          std::string("unknown message type '") + frame.type + "'");
      return false;  // cannot trust the stream after an unknown frame
  }
}

void Server::RunStatement(int fd, ExecContext* ctx, const SessionClock& clock,
                          const sqlfe::Statement& stmt, const std::string* sql,
                          uint64_t parse_start_ns, uint64_t parse_end_ns) {
  const uint64_t t0 = telemetry::NowNs();
  // Per-statement sampling, but the exported tree shows the connection
  // context too: a session root span (started retroactively at session
  // start) with the admission-queue wait under it, then the statement tree
  // ExecuteParsed hangs below. Pre-installing the trace on the context also
  // transfers publish ownership here (see sqlfe::ExecuteParsed).
  std::shared_ptr<trace::Trace> tr = db_->tracer()->MaybeSample();
  uint32_t session_span = 0;
  if (tr != nullptr) {
    session_span = tr->BeginAt(0, trace::SpanKind::kSession, "session",
                               clock.started_ns);
    if (clock.started_ns > clock.accepted_ns) {
      tr->AddComplete(session_span, trace::SpanKind::kWait, "admission-queue",
                      clock.accepted_ns, clock.started_ns,
                      trace::WaitKind::kAdmission);
    }
    ctx->set_trace(trace::TraceContext{tr.get(), session_span});
  }
  sqlfe::ExecHints hints;
  hints.sql = sql;
  hints.parse_start_ns = parse_start_ns;
  hints.parse_end_ns = parse_end_ns;
  Result<sqlfe::SqlResult> run = sqlfe::ExecuteParsed(db_, ctx, stmt, hints);
  if (tr != nullptr) {
    ctx->set_trace(trace::TraceContext{});
    tr->End(session_span);
    db_->tracer()->Publish(std::move(tr));
  }
  const uint64_t latency_ns = telemetry::NowNs() - t0;
  QueryLatency()->Observe(latency_ns);
  QueriesTotal()->Add(1);
  if (latency_ns >= db_->tracer()->slow_query_ns()) SlowQueriesTotal()->Add(1);
  if (!run.ok()) {
    (void)WriteFrame(fd, kMsgError, run.status().ToString());
    return;
  }
  const sqlfe::SqlResult& result = *run;
  // Batch the whole response into one write: fewer syscalls, and a row
  // stream can never interleave with another session's frames (each session
  // owns its fd, but small writes would still fragment badly under TCP).
  std::string out;
  if (!result.columns.empty()) {
    EncodeFrame(kMsgRowDescription, EncodeStrings(result.columns), &out);
    for (const std::vector<std::string>& row : result.rows) {
      EncodeFrame(kMsgDataRow, EncodeStrings(row), &out);
    }
  }
  EncodeFrame(kMsgCommandComplete, CommandTag(stmt, result), &out);
  (void)WriteAll(fd, out);
}

void Server::Shutdown() {
  // Serialized: concurrent callers (signal handler path + destructor) take
  // turns; the second sees shutdown_done_ and returns once drained.
  std::lock_guard<std::mutex> shutdown_guard(shutdown_mutex_);
  if (!started_.load(std::memory_order_acquire) || shutdown_done_) return;
  stop_.store(true, std::memory_order_release);
  // 1. Stop accepting: the accept thread notices stop_ within its poll
  //    timeout and closes the listen socket.
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Drain sessions: active ones finish their in-flight statement and
  //    exit at the next frame boundary; queued ones are bounced on entry.
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drained_.wait(lock, [this] {
      return in_system_.load(std::memory_order_acquire) == 0;
    });
  }
  // 3. Tear down the session pool (all tasks done), checkpoint so a clean
  //    shutdown leaves nothing for restart recovery to redo, then quiesce
  //    the bee forge so no background compile outlives the server.
  session_pool_.reset();
  (void)db_->Checkpoint();
  db_->QuiesceBees();
  shutdown_done_ = true;
}

}  // namespace microspec::server
