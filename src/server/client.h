#ifndef MICROSPEC_SERVER_CLIENT_H_
#define MICROSPEC_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "server/wire.h"

namespace microspec::server {

/// One query's result as decoded from the wire: column names, row cells
/// (rendered text, matching sqlfe::SqlResult), and the completion tag.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::string tag;  // e.g. "SELECT 3", "INSERT 2", "CREATE TABLE"
};

/// Minimal blocking client for the microspec wire protocol — the test and
/// bench harness's counterpart to the server, and the reference
/// implementation for the framing. Not thread-safe; one Client per
/// connection per thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  MICROSPEC_DISALLOW_COPY_AND_MOVE(Client);

  Status Connect(const std::string& host, int port);

  /// Simple query protocol: send 'Q', collect T/D*/C (or E), consume the
  /// trailing ReadyForQuery.
  Result<QueryResult> Query(const std::string& sql);

  /// Extended protocol. Parse/Bind/CloseStmt expect a single ack frame;
  /// Execute streams like Query.
  Status Parse(const std::string& name, const std::string& sql);
  Status Bind(const std::string& name);
  Result<QueryResult> Execute(const std::string& name);
  Status CloseStmt(const std::string& name);

  /// Sends Terminate and closes the socket.
  void Terminate();

  /// Low-level escape hatches for protocol tests: send one raw frame /
  /// arbitrary bytes, read one frame back.
  Status SendFrame(char type, std::string_view payload);
  Status SendRaw(std::string_view bytes);
  Result<Frame> ReadOne();

  bool connected() const { return fd_ >= 0; }

  void Close();

 private:
  /// Reads T/D*/C into a QueryResult, then the trailing 'Z'. An 'E' frame
  /// anywhere yields its message as an Internal error (after consuming the
  /// 'Z' that follows execute-phase errors).
  Result<QueryResult> ReadQueryResponse();

  int fd_ = -1;
};

/// One-shot HTTP GET against the server's listener (the /metrics scrape
/// path). Returns the response body on HTTP 200.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

}  // namespace microspec::server

#endif  // MICROSPEC_SERVER_CLIENT_H_
