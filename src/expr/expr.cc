#include "expr/expr.h"

#include <cstring>

#include "common/counters.h"
#include "common/macros.h"

namespace microspec {

namespace {

/// True when the type participates in integer comparison/arithmetic.
bool IsIntClass(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kDate;
}

bool IsStringClass(TypeId t) {
  return t == TypeId::kChar || t == TypeId::kVarchar;
}

}  // namespace

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

/// --- VarExpr ----------------------------------------------------------------

Datum VarExpr::Eval(const ExecRow& row, bool* isnull) const {
  // Generic slot access: bounds/side dispatch plus null array consult.
  workops::Bump(3);
  if (side_ == RowSide::kOuter) {
    *isnull = row.isnull != nullptr && row.isnull[attno_];
    return row.values[attno_];
  }
  *isnull = row.inner_isnull != nullptr && row.inner_isnull[attno_];
  return row.inner_values[attno_];
}

ExprPtr VarExpr::Clone() const {
  return std::make_unique<VarExpr>(side_, attno_, meta_);
}

/// --- ConstExpr --------------------------------------------------------------

Datum ConstExpr::Eval(const ExecRow& row, bool* isnull) const {
  (void)row;
  workops::Bump(2);
  *isnull = isnull_;
  return value_;
}

ExprPtr ConstExpr::Clone() const {
  auto c = std::make_unique<ConstExpr>(value_, meta_, isnull_);
  c->owned_ = owned_;  // share the varlena backing bytes
  return c;
}

ExprPtr ConstExpr::OwnedVarchar(std::string payload) {
  auto storage = std::make_shared<std::string>();
  uint32_t total = kVarlenaHeaderSize + static_cast<uint32_t>(payload.size());
  storage->resize(total);
  VarlenaWriteHeader(storage->data(), total);
  std::memcpy(storage->data() + kVarlenaHeaderSize, payload.data(),
              payload.size());
  auto c = std::make_unique<ConstExpr>(DatumFromPointer(storage->data()),
                                       ColMeta::Of(TypeId::kVarchar));
  c->owned_ = std::move(storage);
  return c;
}

ExprPtr ConstExpr::OwnedChar(std::string payload, int32_t len) {
  auto storage = std::make_shared<std::string>(std::move(payload));
  storage->resize(static_cast<size_t>(len), ' ');
  auto c = std::make_unique<ConstExpr>(DatumFromPointer(storage->data()),
                                       ColMeta::Of(TypeId::kChar, len));
  c->owned_ = std::move(storage);
  return c;
}

/// --- CmpExpr ----------------------------------------------------------------

Datum CmpExpr::Eval(const ExecRow& row, bool* isnull) const {
  // The generic FuncExprState path: evaluate each argument through virtual
  // dispatch, null-check each, then dispatch on the runtime operand type and
  // the operator — all of which the EVP bee folds into one straight-line
  // monomorphic kernel.
  bool lnull = false;
  bool rnull = false;
  Datum l = lhs_->Eval(row, &lnull);
  Datum r = rhs_->Eval(row, &rnull);
  workops::Bump(9);  // argument boxing/null checks + operator dispatch
  if (lnull || rnull) {
    *isnull = true;
    return 0;
  }
  *isnull = false;
  int c = DatumCompareGeneric(l, r, lhs_->meta());
  switch (op_) {
    case CmpOp::kEq:
      return DatumFromBool(c == 0);
    case CmpOp::kNe:
      return DatumFromBool(c != 0);
    case CmpOp::kLt:
      return DatumFromBool(c < 0);
    case CmpOp::kLe:
      return DatumFromBool(c <= 0);
    case CmpOp::kGt:
      return DatumFromBool(c > 0);
    case CmpOp::kGe:
      return DatumFromBool(c >= 0);
  }
  return 0;
}

ExprPtr CmpExpr::Clone() const {
  return std::make_unique<CmpExpr>(op_, lhs_->Clone(), rhs_->Clone());
}

/// --- ArithExpr --------------------------------------------------------------

ArithExpr::ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
    : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  TypeId lt = lhs_->meta().type;
  TypeId rt = rhs_->meta().type;
  MICROSPEC_CHECK(!IsStringClass(lt) && !IsStringClass(rt));
  result_type_ = (lt == TypeId::kFloat64 || rt == TypeId::kFloat64)
                     ? TypeId::kFloat64
                     : TypeId::kInt64;
}

Datum ArithExpr::Eval(const ExecRow& row, bool* isnull) const {
  bool lnull = false;
  bool rnull = false;
  Datum l = lhs_->Eval(row, &lnull);
  Datum r = rhs_->Eval(row, &rnull);
  workops::Bump(10);  // null checks + type/operator dispatch
  if (lnull || rnull) {
    *isnull = true;
    return 0;
  }
  *isnull = false;
  if (result_type_ == TypeId::kFloat64) {
    double lv = lhs_->meta().type == TypeId::kFloat64
                    ? DatumToFloat64(l)
                    : static_cast<double>(DatumToInt64(l));
    double rv = rhs_->meta().type == TypeId::kFloat64
                    ? DatumToFloat64(r)
                    : static_cast<double>(DatumToInt64(r));
    double out = 0;
    switch (op_) {
      case ArithOp::kAdd:
        out = lv + rv;
        break;
      case ArithOp::kSub:
        out = lv - rv;
        break;
      case ArithOp::kMul:
        out = lv * rv;
        break;
      case ArithOp::kDiv:
        out = rv == 0 ? 0 : lv / rv;
        break;
    }
    return DatumFromFloat64(out);
  }
  int64_t lv = DatumToInt64(l);
  int64_t rv = DatumToInt64(r);
  int64_t out = 0;
  switch (op_) {
    case ArithOp::kAdd:
      out = lv + rv;
      break;
    case ArithOp::kSub:
      out = lv - rv;
      break;
    case ArithOp::kMul:
      out = lv * rv;
      break;
    case ArithOp::kDiv:
      out = rv == 0 ? 0 : lv / rv;
      break;
  }
  return DatumFromInt64(out);
}

ExprPtr ArithExpr::Clone() const {
  return std::make_unique<ArithExpr>(op_, lhs_->Clone(), rhs_->Clone());
}

/// --- BoolExpr ---------------------------------------------------------------

Datum BoolExpr::Eval(const ExecRow& row, bool* isnull) const {
  workops::Bump(3);
  *isnull = false;
  if (op_ == BoolOp::kNot) {
    bool cnull = false;
    Datum v = children_[0]->Eval(row, &cnull);
    if (cnull) {
      *isnull = true;
      return 0;
    }
    return DatumFromBool(!DatumToBool(v));
  }
  bool is_and = op_ == BoolOp::kAnd;
  for (const ExprPtr& child : children_) {
    bool cnull = false;
    Datum v = child->Eval(row, &cnull);
    workops::Bump(2);
    bool b = !cnull && DatumToBool(v);
    if (is_and && !b) return DatumFromBool(false);
    if (!is_and && b) return DatumFromBool(true);
  }
  return DatumFromBool(is_and);
}

ExprPtr BoolExpr::Clone() const {
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const ExprPtr& c : children_) kids.push_back(c->Clone());
  return std::make_unique<BoolExpr>(op_, std::move(kids));
}

/// --- LikeExpr ---------------------------------------------------------------

LikeExpr::LikeExpr(ExprPtr input, const std::string& pattern, bool negated)
    : input_(std::move(input)), negated_(negated) {
  bool lead = !pattern.empty() && pattern.front() == '%';
  bool trail = !pattern.empty() && pattern.back() == '%';
  if (lead && trail && pattern.size() >= 2) {
    mode_ = Mode::kContains;
    needle_ = pattern.substr(1, pattern.size() - 2);
  } else if (trail) {
    mode_ = Mode::kPrefix;
    needle_ = pattern.substr(0, pattern.size() - 1);
  } else if (lead) {
    mode_ = Mode::kSuffix;
    needle_ = pattern.substr(1);
  } else {
    mode_ = Mode::kExact;
    needle_ = pattern;
  }
  MICROSPEC_CHECK(needle_.find('%') == std::string::npos);
}

Datum LikeExpr::Eval(const ExecRow& row, bool* isnull) const {
  bool cnull = false;
  Datum v = input_->Eval(row, &cnull);
  if (cnull) {
    *isnull = true;
    return 0;
  }
  *isnull = false;
  std::string_view hay;
  ColMeta m = input_->meta();
  if (m.type == TypeId::kVarchar) {
    hay = VarlenaView(v);
  } else {
    hay = std::string_view(DatumToPointer(v), static_cast<size_t>(m.attlen));
  }
  workops::Bump(8);  // generic pattern-kind dispatch + length checks
  bool match = false;
  switch (mode_) {
    case Mode::kExact:
      match = hay == needle_;
      break;
    case Mode::kPrefix:
      match = hay.substr(0, needle_.size()) == needle_;
      break;
    case Mode::kSuffix:
      match = hay.size() >= needle_.size() &&
              hay.substr(hay.size() - needle_.size()) == needle_;
      break;
    case Mode::kContains:
      match = hay.find(needle_) != std::string_view::npos;
      break;
  }
  return DatumFromBool(negated_ ? !match : match);
}

ExprPtr LikeExpr::Clone() const {
  auto c = std::make_unique<LikeExpr>(input_->Clone(), "", negated_);
  c->mode_ = mode_;
  c->needle_ = needle_;
  return c;
}

/// --- InListExpr -------------------------------------------------------------

Datum InListExpr::Eval(const ExecRow& row, bool* isnull) const {
  bool cnull = false;
  Datum v = input_->Eval(row, &cnull);
  if (cnull) {
    *isnull = true;
    return 0;
  }
  *isnull = false;
  for (Datum item : items_) {
    workops::Bump(2);
    if (DatumEqualsGeneric(v, item, item_meta_)) return DatumFromBool(true);
  }
  return DatumFromBool(false);
}

ExprPtr InListExpr::Clone() const {
  return std::make_unique<InListExpr>(input_->Clone(), items_, item_meta_);
}

/// --- Builders ---------------------------------------------------------------

ExprPtr Var(RowSide side, int attno, ColMeta meta) {
  return std::make_unique<VarExpr>(side, attno, meta);
}
ExprPtr Var(int attno, ColMeta meta) {
  return Var(RowSide::kOuter, attno, meta);
}
ExprPtr ConstInt32(int32_t v) {
  return std::make_unique<ConstExpr>(DatumFromInt32(v),
                                     ColMeta::Of(TypeId::kInt32));
}
ExprPtr ConstInt64(int64_t v) {
  return std::make_unique<ConstExpr>(DatumFromInt64(v),
                                     ColMeta::Of(TypeId::kInt64));
}
ExprPtr ConstFloat64(double v) {
  return std::make_unique<ConstExpr>(DatumFromFloat64(v),
                                     ColMeta::Of(TypeId::kFloat64));
}
ExprPtr ConstDate(int32_t days) {
  return std::make_unique<ConstExpr>(DatumFromInt32(days),
                                     ColMeta::Of(TypeId::kDate));
}
ExprPtr ConstBool(bool v) {
  return std::make_unique<ConstExpr>(DatumFromBool(v),
                                     ColMeta::Of(TypeId::kBool));
}
ExprPtr ConstVarchar(std::string payload) {
  return ConstExpr::OwnedVarchar(std::move(payload));
}
ExprPtr ConstChar(std::string payload, int32_t len) {
  return ConstExpr::OwnedChar(std::move(payload), len);
}
ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  TypeId lt = lhs->meta().type;
  TypeId rt = rhs->meta().type;
  MICROSPEC_CHECK(IsIntClass(lt) == IsIntClass(rt) &&
                  IsStringClass(lt) == IsStringClass(rt));
  return std::make_unique<CmpExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr And(std::vector<ExprPtr> children) {
  return std::make_unique<BoolExpr>(BoolOp::kAnd, std::move(children));
}
ExprPtr Or(std::vector<ExprPtr> children) {
  return std::make_unique<BoolExpr>(BoolOp::kOr, std::move(children));
}
ExprPtr Not(ExprPtr child) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(child));
  return std::make_unique<BoolExpr>(BoolOp::kNot, std::move(kids));
}
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi) {
  ExprPtr input2 = input->Clone();
  std::vector<ExprPtr> kids;
  kids.push_back(Cmp(CmpOp::kGe, std::move(input), std::move(lo)));
  kids.push_back(Cmp(CmpOp::kLe, std::move(input2), std::move(hi)));
  return And(std::move(kids));
}

}  // namespace microspec
