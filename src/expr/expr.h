#ifndef MICROSPEC_EXPR_EXPR_H_
#define MICROSPEC_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/types.h"
#include "exec/row.h"

namespace microspec {

/// Interpreted expression trees — the engine's analog of PostgreSQL's
/// ExprState/FuncExprState machinery. Every Eval() pays virtual dispatch,
/// per-call null bookkeeping, and a runtime type switch; those are the
/// invariant-driven costs the EVP query bee removes for predicates whose
/// shape and operand types are fixed at query-preparation time.
enum class ExprKind : uint8_t {
  kVar,
  kConst,
  kCmp,
  kArith,
  kBool,
  kLike,
  kInList,
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };
enum class BoolOp : uint8_t { kAnd, kOr, kNot };

const char* CmpOpName(CmpOp op);

class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `row`; sets *isnull and returns the Datum (undefined
  /// when *isnull). SQL three-valued logic is approximated: a NULL predicate
  /// result is treated as false by filters.
  virtual Datum Eval(const ExecRow& row, bool* isnull) const = 0;

  virtual ExprKind kind() const = 0;
  /// Result type metadata.
  virtual ColMeta meta() const = 0;
  /// Deep copy. Lets callers reuse one predicate tree across the stock and
  /// bee-enabled sessions being compared.
  virtual std::unique_ptr<Expr> Clone() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Reference to an input column.
class VarExpr final : public Expr {
 public:
  VarExpr(RowSide side, int attno, ColMeta meta)
      : side_(side), attno_(attno), meta_(meta) {}
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kVar; }
  ColMeta meta() const override { return meta_; }
  ExprPtr Clone() const override;

  RowSide side() const { return side_; }
  int attno() const { return attno_; }

 private:
  RowSide side_;
  int attno_;
  ColMeta meta_;
};

/// Literal constant.
class ConstExpr final : public Expr {
 public:
  ConstExpr(Datum value, ColMeta meta, bool isnull = false)
      : value_(value), meta_(meta), isnull_(isnull) {}
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kConst; }
  ColMeta meta() const override { return meta_; }
  ExprPtr Clone() const override;

  /// Builds a constant varchar; the varlena bytes are owned by the node.
  static ExprPtr OwnedVarchar(std::string payload);

  /// Builds a constant char(n): `payload` blank-padded to `len` raw bytes,
  /// owned by the node. Use when comparing against a char(n) column.
  static ExprPtr OwnedChar(std::string payload, int32_t len);

  Datum value() const { return value_; }
  bool is_null_const() const { return isnull_; }

 private:
  Datum value_;
  ColMeta meta_;
  bool isnull_;
  /// Backing storage for pass-by-reference constants (varlena bytes).
  std::shared_ptr<std::string> owned_;
};

/// Comparison; both operands must share a comparison class (int/float/char/
/// varchar), enforced by the builder.
class CmpExpr final : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kCmp; }
  ExprPtr Clone() const override;
  ColMeta meta() const override { return ColMeta::Of(TypeId::kBool); }

  CmpOp op() const { return op_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }

 private:
  CmpOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Arithmetic. Integer operands produce kInt64; any float operand produces
/// kFloat64 (operand datums are converted per evaluation — another generic
/// cost).
class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kArith; }
  ExprPtr Clone() const override;
  ColMeta meta() const override { return ColMeta::Of(result_type_); }

  ArithOp op() const { return op_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  TypeId result_type_;
};

/// AND/OR over n children (short-circuit), or NOT over one.
class BoolExpr final : public Expr {
 public:
  BoolExpr(BoolOp op, std::vector<ExprPtr> children)
      : op_(op), children_(std::move(children)) {}
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kBool; }
  ExprPtr Clone() const override;
  ColMeta meta() const override { return ColMeta::Of(TypeId::kBool); }

  BoolOp op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  BoolOp op_;
  std::vector<ExprPtr> children_;
};

/// LIKE over char/varchar with patterns restricted to the four common shapes
/// (exact, prefix%, %suffix, %infix%), which covers TPC-H usage.
class LikeExpr final : public Expr {
 public:
  enum class Mode : uint8_t { kExact, kPrefix, kSuffix, kContains };

  LikeExpr(ExprPtr input, const std::string& pattern, bool negated = false);
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kLike; }
  ExprPtr Clone() const override;
  ColMeta meta() const override { return ColMeta::Of(TypeId::kBool); }

  Mode mode() const { return mode_; }
  const std::string& needle() const { return needle_; }
  bool negated() const { return negated_; }
  const Expr* input() const { return input_.get(); }

 private:
  ExprPtr input_;
  Mode mode_;
  std::string needle_;
  bool negated_;
};

/// expr IN (c1, c2, ...) over integer-class or string constants.
class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<Datum> items, ColMeta item_meta)
      : input_(std::move(input)),
        items_(std::move(items)),
        item_meta_(item_meta) {}
  Datum Eval(const ExecRow& row, bool* isnull) const override;
  ExprKind kind() const override { return ExprKind::kInList; }
  ExprPtr Clone() const override;
  ColMeta meta() const override { return ColMeta::Of(TypeId::kBool); }

  const Expr* input() const { return input_.get(); }
  const std::vector<Datum>& items() const { return items_; }
  ColMeta item_meta() const { return item_meta_; }

 private:
  ExprPtr input_;
  std::vector<Datum> items_;
  ColMeta item_meta_;
};

/// --- Convenience builders ---------------------------------------------------

ExprPtr Var(RowSide side, int attno, ColMeta meta);
ExprPtr Var(int attno, ColMeta meta);  // outer side
ExprPtr ConstInt32(int32_t v);
ExprPtr ConstInt64(int64_t v);
ExprPtr ConstFloat64(double v);
ExprPtr ConstDate(int32_t days);
ExprPtr ConstBool(bool v);
/// The returned expression borrows `payload`'s bytes copied into an internal
/// buffer; safe to use after `payload` goes away.
ExprPtr ConstVarchar(std::string payload);
/// char(n) constant, blank-padded to `len`.
ExprPtr ConstChar(std::string payload, int32_t len);
ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr child);
ExprPtr Between(ExprPtr input, ExprPtr lo, ExprPtr hi);

/// Builds a vector<ExprPtr> from a variadic list (And/Or take vectors;
/// initializer lists cannot hold move-only types).
template <typename... Es>
std::vector<ExprPtr> ExprListOf(Es... exprs) {
  std::vector<ExprPtr> v;
  v.reserve(sizeof...(exprs));
  (v.push_back(std::move(exprs)), ...);
  return v;
}

}  // namespace microspec

#endif  // MICROSPEC_EXPR_EXPR_H_
