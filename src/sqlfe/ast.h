#ifndef MICROSPEC_SQLFE_AST_H_
#define MICROSPEC_SQLFE_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "expr/expr.h"

namespace microspec::sqlfe {

/// --- Expression AST ----------------------------------------------------------
/// Unbound expressions as parsed; the binder resolves column names against
/// the FROM clause and lowers them to the engine's Expr trees.

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind : uint8_t {
  kColumn,     // name
  kIntLit,
  kFloatLit,
  kStringLit,
  kCmp,        // op, lhs, rhs
  kArith,      // aop, lhs, rhs
  kAnd,        // children
  kOr,         // children
  kNot,        // children[0]
  kBetween,    // lhs BETWEEN children[0] AND children[1]
  kLike,       // lhs LIKE 'pattern' (text), negated flag
  kInList,     // lhs IN (children...)
  kAggregate,  // agg over children[0] (or COUNT(*) with no child)
};

enum class SqlAgg : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

struct SqlExpr {
  SqlExprKind kind;
  std::string text;       // column name / literal text / like pattern
  CmpOp cmp = CmpOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  SqlAgg agg = SqlAgg::kCountStar;
  bool negated = false;
  SqlExprPtr lhs;
  SqlExprPtr rhs;
  std::vector<SqlExprPtr> children;
};

/// --- Statements --------------------------------------------------------------

struct ColumnDef {
  std::string name;
  TypeId type;
  int32_t char_len = 0;
  bool not_null = false;
  bool low_cardinality = false;  // LOW CARDINALITY annotation (tuple bees)
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct InsertStmt {
  std::string table;
  /// Rows of literals (kIntLit/kFloatLit/kStringLit, or kColumn with text
  /// "null" for NULL).
  std::vector<std::vector<SqlExprPtr>> rows;
};

struct SelectItem {
  SqlExprPtr expr;
  std::string alias;  // derived from the expression when not given
};

struct JoinClause {
  std::string table;
  std::string left_col;   // column from the plan built so far
  std::string right_col;  // column of the joined table
};

struct OrderItem {
  std::string column;
  bool desc = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;  // empty = SELECT *
  std::string from;
  std::vector<JoinClause> joins;
  SqlExprPtr where;  // may be null
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

struct Statement {
  enum class Kind : uint8_t { kCreateTable, kInsert, kSelect } kind;
  CreateTableStmt create;
  InsertStmt insert;
  SelectStmt select;
  /// EXPLAIN ANALYZE <select>: execute the query, discard its rows, and
  /// return the per-operator stats tree instead (kSelect only).
  bool explain_analyze = false;
};

}  // namespace microspec::sqlfe

#endif  // MICROSPEC_SQLFE_AST_H_
