#ifndef MICROSPEC_SQLFE_LEXER_H_
#define MICROSPEC_SQLFE_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace microspec::sqlfe {

enum class TokenKind : uint8_t {
  kIdent,    // unquoted identifier (lower-cased) or keyword
  kInt,      // integer literal
  kFloat,    // floating literal
  kString,   // 'single quoted'
  kSymbol,   // ( ) , * = < > <= >= <> + - / .
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier (lower-cased), literal text, or symbol
  size_t pos = 0;    // byte offset for error messages

  bool Is(TokenKind k, const char* t) const { return kind == k && text == t; }
};

/// Splits a SQL string into tokens. Keywords are not distinguished from
/// identifiers here (the parser matches on lower-cased text).
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace microspec::sqlfe

#endif  // MICROSPEC_SQLFE_LEXER_H_
