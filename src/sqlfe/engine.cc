#include "sqlfe/engine.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/telemetry.h"
#include "common/tracing.h"
#include "exec/analyze.h"
#include "exec/plan_builder.h"

namespace microspec::sqlfe {

namespace {

/// Per-phase statement latency (always on — per statement, never per row).
telemetry::Histogram* ParseNs() {
  static telemetry::Histogram* h =
      telemetry::Registry::Global().GetHistogram("microspec_query_parse_ns");
  return h;
}
telemetry::Histogram* PlanNs() {
  static telemetry::Histogram* h =
      telemetry::Registry::Global().GetHistogram("microspec_query_plan_ns");
  return h;
}
telemetry::Histogram* ExecNs() {
  static telemetry::Histogram* h =
      telemetry::Registry::Global().GetHistogram("microspec_query_exec_ns");
  return h;
}
telemetry::Counter* SlowQueriesTotal() {
  static telemetry::Counter* c =
      telemetry::Registry::Global().GetCounter("microspec_slow_queries_total");
  return c;
}

bool IsIntClass(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kDate;
}

/// 'YYYY-MM-DD' under the engine's simplified calendar.
Result<int32_t> ParseDate(const std::string& s) {
  int y = 0;
  int m = 0;
  int d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::InvalidArgument("bad date literal '" + s + "'");
  }
  return static_cast<int32_t>((y - 1992) * 365 + (m - 1) * 30 + (d - 1));
}

/// Lowers a literal AST node to a constant expression of `target` type.
Result<ExprPtr> LowerLiteral(const SqlExpr& lit, ColMeta target) {
  switch (target.type) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
      if (lit.kind != SqlExprKind::kIntLit) {
        return Status::InvalidArgument("expected integer literal");
      }
      if (target.type == TypeId::kInt64) {
        return ConstInt64(std::atoll(lit.text.c_str()));
      }
      if (target.type == TypeId::kBool) {
        return ConstBool(std::atoi(lit.text.c_str()) != 0);
      }
      return ConstInt32(std::atoi(lit.text.c_str()));
    case TypeId::kDate:
      if (lit.kind == SqlExprKind::kIntLit) {
        return ConstDate(std::atoi(lit.text.c_str()));
      }
      if (lit.kind == SqlExprKind::kStringLit) {
        MICROSPEC_ASSIGN_OR_RETURN(int32_t days, ParseDate(lit.text));
        return ConstDate(days);
      }
      return Status::InvalidArgument("expected date literal");
    case TypeId::kFloat64:
      if (lit.kind != SqlExprKind::kIntLit &&
          lit.kind != SqlExprKind::kFloatLit) {
        return Status::InvalidArgument("expected numeric literal");
      }
      return ConstFloat64(std::atof(lit.text.c_str()));
    case TypeId::kChar:
      if (lit.kind != SqlExprKind::kStringLit) {
        return Status::InvalidArgument("expected string literal");
      }
      return ConstChar(lit.text, target.attlen);
    case TypeId::kVarchar:
      if (lit.kind != SqlExprKind::kStringLit) {
        return Status::InvalidArgument("expected string literal");
      }
      return ConstVarchar(lit.text);
  }
  return Status::Internal("unreachable literal type");
}

bool IsLiteral(const SqlExpr& e) {
  return e.kind == SqlExprKind::kIntLit || e.kind == SqlExprKind::kFloatLit ||
         e.kind == SqlExprKind::kStringLit;
}

/// Lowers an AST expression against `plan`'s output columns. `hint` guides
/// literal typing (the meta of the column a literal is compared against).
Result<ExprPtr> Lower(const SqlExpr& e, const Plan& plan,
                      const ColMeta* hint = nullptr) {
  switch (e.kind) {
    case SqlExprKind::kColumn: {
      if (e.text == "null") {
        return Status::NotSupported("bare NULL outside INSERT");
      }
      if (plan.TryCol(e.text) < 0) {
        return Status::NotFound("unknown column " + e.text);
      }
      return plan.var(e.text);
    }
    case SqlExprKind::kIntLit:
      if (hint != nullptr) return LowerLiteral(e, *hint);
      return ConstInt64(std::atoll(e.text.c_str()));
    case SqlExprKind::kFloatLit:
      if (hint != nullptr && hint->type == TypeId::kFloat64) {
        return LowerLiteral(e, *hint);
      }
      return ConstFloat64(std::atof(e.text.c_str()));
    case SqlExprKind::kStringLit:
      if (hint != nullptr) return LowerLiteral(e, *hint);
      return ConstVarchar(e.text);
    case SqlExprKind::kCmp: {
      // Type the literal side (if any) from the column side.
      const SqlExpr* l = e.lhs.get();
      const SqlExpr* r = e.rhs.get();
      if (IsLiteral(*l) && !IsLiteral(*r)) {
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr rhs, Lower(*r, plan));
        ColMeta m = rhs->meta();
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr lhs, Lower(*l, plan, &m));
        return Cmp(e.cmp, std::move(lhs), std::move(rhs));
      }
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr lhs, Lower(*l, plan));
      ColMeta m = lhs->meta();
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr rhs, Lower(*r, plan, &m));
      return Cmp(e.cmp, std::move(lhs), std::move(rhs));
    }
    case SqlExprKind::kArith: {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr lhs, Lower(*e.lhs, plan));
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr rhs, Lower(*e.rhs, plan));
      return Arith(e.arith, std::move(lhs), std::move(rhs));
    }
    case SqlExprKind::kAnd:
    case SqlExprKind::kOr: {
      std::vector<ExprPtr> kids;
      for (const SqlExprPtr& c : e.children) {
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr k, Lower(*c, plan));
        kids.push_back(std::move(k));
      }
      return e.kind == SqlExprKind::kAnd ? And(std::move(kids))
                                         : Or(std::move(kids));
    }
    case SqlExprKind::kNot: {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr k, Lower(*e.children[0], plan));
      return Not(std::move(k));
    }
    case SqlExprKind::kBetween: {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr input, Lower(*e.lhs, plan));
      ColMeta m = input->meta();
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr lo, Lower(*e.children[0], plan, &m));
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr hi, Lower(*e.children[1], plan, &m));
      return Between(std::move(input), std::move(lo), std::move(hi));
    }
    case SqlExprKind::kLike: {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr input, Lower(*e.lhs, plan));
      ExprPtr like =
          std::make_unique<LikeExpr>(std::move(input), e.text, e.negated);
      return like;
    }
    case SqlExprKind::kInList: {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr input, Lower(*e.lhs, plan));
      ColMeta m = input->meta();
      // Items must outlive the query; keep constants as subexpressions and
      // compose as a disjunction of equalities (semantically IN), unless all
      // items are integers, where the engine's InListExpr applies directly.
      if (IsIntClass(m.type)) {
        std::vector<Datum> items;
        for (const SqlExprPtr& c : e.children) {
          if (c->kind != SqlExprKind::kIntLit) {
            return Status::InvalidArgument("IN list item type mismatch");
          }
          items.push_back(DatumFromInt64(std::atoll(c->text.c_str())));
        }
        ExprPtr in = std::make_unique<InListExpr>(std::move(input),
                                                  std::move(items), m);
        return e.negated ? Not(std::move(in)) : std::move(in);
      }
      std::vector<ExprPtr> eqs;
      for (const SqlExprPtr& c : e.children) {
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr item, Lower(*c, plan, &m));
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr col, Lower(*e.lhs, plan));
        eqs.push_back(Cmp(CmpOp::kEq, std::move(col), std::move(item)));
      }
      ExprPtr in = Or(std::move(eqs));
      return e.negated ? Not(std::move(in)) : std::move(in);
    }
    case SqlExprKind::kAggregate:
      return Status::InvalidArgument("aggregate in a non-aggregate position");
  }
  return Status::Internal("unreachable expr kind");
}

bool ContainsAggregate(const SqlExpr& e) {
  if (e.kind == SqlExprKind::kAggregate) return true;
  if (e.lhs != nullptr && ContainsAggregate(*e.lhs)) return true;
  if (e.rhs != nullptr && ContainsAggregate(*e.rhs)) return true;
  for (const SqlExprPtr& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

std::string RenderDatum(Datum d, const ColMeta& meta) {
  char buf[64];
  switch (meta.type) {
    case TypeId::kBool:
      return DatumToBool(d) ? "t" : "f";
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return std::to_string(DatumToInt64(d));
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%g", DatumToFloat64(d));
      return buf;
    case TypeId::kChar: {
      std::string s(DatumToPointer(d), static_cast<size_t>(meta.attlen));
      while (!s.empty() && s.back() == ' ') s.pop_back();  // trim padding
      return s;
    }
    case TypeId::kVarchar: {
      std::string_view sv = VarlenaView(d);
      return std::string(sv);
    }
  }
  return "?";
}

Result<SqlResult> RunCreate(Database* db, const CreateTableStmt& stmt) {
  std::vector<Column> cols;
  for (const ColumnDef& def : stmt.columns) {
    Column c(def.name, def.type, def.not_null, def.char_len);
    c.set_low_cardinality(def.low_cardinality);
    cols.push_back(std::move(c));
  }
  MICROSPEC_RETURN_NOT_OK(
      db->CreateTable(stmt.table, Schema(std::move(cols))).status());
  return SqlResult{};
}

Result<SqlResult> RunInsert(Database* db, ExecContext* ctx,
                            const InsertStmt& stmt) {
  TableInfo* table = db->catalog()->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("table " + stmt.table);
  const Schema& schema = table->schema();
  int natts = schema.natts();

  SqlResult result;
  Arena arena;
  std::vector<Datum> values(static_cast<size_t>(natts));
  std::vector<char> isnull(static_cast<size_t>(natts));
  for (const auto& row : stmt.rows) {
    if (static_cast<int>(row.size()) != natts) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    for (int i = 0; i < natts; ++i) {
      const SqlExpr& lit = *row[static_cast<size_t>(i)];
      if (lit.kind == SqlExprKind::kColumn && lit.text == "null") {
        if (schema.column(i).not_null()) {
          return Status::InvalidArgument("NULL in NOT NULL column " +
                                         schema.column(i).name());
        }
        isnull[static_cast<size_t>(i)] = 1;
        values[static_cast<size_t>(i)] = 0;
        continue;
      }
      isnull[static_cast<size_t>(i)] = 0;
      MICROSPEC_ASSIGN_OR_RETURN(
          ExprPtr c, LowerLiteral(lit, ColMeta::FromColumn(schema.column(i))));
      bool dummy = false;
      ExecRow empty{};
      Datum d = c->Eval(empty, &dummy);
      // Copy byref constants into the arena so they survive this loop body.
      values[static_cast<size_t>(i)] =
          CopyDatum(&arena, d, ColMeta::FromColumn(schema.column(i)));
    }
    MICROSPEC_RETURN_NOT_OK(
        db->Insert(ctx, table, values.data(),
                   reinterpret_cast<bool*>(isnull.data()))
            .status());
    ++result.affected;
  }
  return result;
}

Result<SqlResult> RunSelect(Database* db, ExecContext* ctx,
                            const SelectStmt& stmt) {
  const trace::TraceContext tc = ctx->trace();
  const uint64_t plan_start = telemetry::NowNs();
  TableInfo* from = db->catalog()->GetTable(stmt.from);
  if (from == nullptr) return Status::NotFound("table " + stmt.from);
  Plan plan = Plan::Scan(ctx, from);
  for (const JoinClause& join : stmt.joins) {
    TableInfo* right = db->catalog()->GetTable(join.table);
    if (right == nullptr) return Status::NotFound("table " + join.table);
    Plan right_scan = Plan::Scan(ctx, right);
    if (plan.TryCol(join.left_col) < 0) {
      return Status::NotFound("unknown join column " + join.left_col);
    }
    if (right_scan.TryCol(join.right_col) < 0) {
      return Status::NotFound("unknown join column " + join.right_col);
    }
    plan = Plan::Join(std::move(plan), std::move(right_scan),
                      {{join.left_col, join.right_col}});
  }
  if (stmt.where != nullptr) {
    MICROSPEC_ASSIGN_OR_RETURN(ExprPtr pred, Lower(*stmt.where, plan));
    plan.Where(std::move(pred));
  }

  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    has_agg = has_agg || ContainsAggregate(*item.expr);
  }

  if (has_agg) {
    std::vector<std::pair<AggSpec, std::string>> aggs;
    for (const SelectItem& item : stmt.items) {
      const SqlExpr& e = *item.expr;
      if (e.kind == SqlExprKind::kColumn) {
        bool grouped = false;
        for (const std::string& g : stmt.group_by) grouped |= g == e.text;
        if (!grouped) {
          return Status::InvalidArgument(
              "column " + e.text + " must appear in GROUP BY");
        }
        continue;  // group columns are emitted automatically
      }
      if (e.kind != SqlExprKind::kAggregate) {
        return Status::NotSupported(
            "select items must be columns or aggregates under GROUP BY");
      }
      AggSpec spec{AggKind::kCountStar, nullptr};
      if (e.agg != SqlAgg::kCountStar) {
        MICROSPEC_ASSIGN_OR_RETURN(ExprPtr arg, Lower(*e.children[0], plan));
        switch (e.agg) {
          case SqlAgg::kCount:
            spec = AggSpec::Count(std::move(arg));
            break;
          case SqlAgg::kSum:
            spec = AggSpec::Sum(std::move(arg));
            break;
          case SqlAgg::kAvg:
            spec = AggSpec::Avg(std::move(arg));
            break;
          case SqlAgg::kMin:
            spec = AggSpec::Min(std::move(arg));
            break;
          case SqlAgg::kMax:
            spec = AggSpec::Max(std::move(arg));
            break;
          default:
            break;
        }
      }
      aggs.emplace_back(std::move(spec), item.alias);
    }
    for (const std::string& g : stmt.group_by) {
      if (plan.TryCol(g) < 0) return Status::NotFound("unknown column " + g);
    }
    plan.GroupBy(stmt.group_by, std::move(aggs));
  } else if (!stmt.items.empty()) {
    std::vector<std::pair<ExprPtr, std::string>> exprs;
    for (const SelectItem& item : stmt.items) {
      MICROSPEC_ASSIGN_OR_RETURN(ExprPtr e, Lower(*item.expr, plan));
      exprs.emplace_back(std::move(e), item.alias);
    }
    plan.Select(std::move(exprs));
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::pair<std::string, bool>> keys;
    for (const OrderItem& o : stmt.order_by) {
      if (plan.TryCol(o.column) < 0) {
        return Status::NotFound("unknown column " + o.column);
      }
      keys.emplace_back(o.column, o.desc);
    }
    plan.OrderBy(keys);
  }
  if (stmt.limit.has_value()) plan.Take(*stmt.limit);

  SqlResult result;
  result.columns = plan.names();
  OperatorPtr op = std::move(plan).Build();
  const uint64_t plan_end = telemetry::NowNs();
  PlanNs()->Observe(plan_end - plan_start);
  uint32_t exec_span = 0;
  if (tc) {
    tc.trace->AddComplete(tc.parent, trace::SpanKind::kPlan, "plan",
                          plan_start, plan_end);
    // Operator spans were registered during plan building with no parent
    // (the exec span did not exist yet); hang them — and everything
    // operators record from here on (bee summaries, forge waits) — under
    // the exec span now.
    exec_span = tc.trace->Begin(tc.parent, trace::SpanKind::kExec, "exec");
    tc.trace->SetDefaultParent(exec_span);
  }
  // Install the trace on the driving thread so shared stall sites (buffer
  // pool misses, Gather's queue) can attribute waits. Null trace => no-op.
  trace::ThreadTraceScope thread_scope(tc.trace, exec_span);
  const std::vector<ColMeta>& meta = op->output_meta();
  Status exec_st = ForEachRow(op.get(), [&](const Datum* v, const bool* n) {
    std::vector<std::string> row;
    row.reserve(meta.size());
    for (size_t i = 0; i < meta.size(); ++i) {
      row.push_back(n != nullptr && n[i] ? "NULL" : RenderDatum(v[i], meta[i]));
    }
    result.rows.push_back(std::move(row));
  });
  const uint64_t exec_end = telemetry::NowNs();
  ExecNs()->Observe(exec_end - plan_end);
  if (tc) {
    tc.trace->SetArgs(exec_span, result.rows.size(), 0);
    tc.trace->End(exec_span);
  }
  MICROSPEC_RETURN_NOT_OK(exec_st);
  return result;
}

/// EXPLAIN ANALYZE: installs a QueryStats collector on the context (Plan
/// then wraps each operator in an OpProfiler), runs the query, discards its
/// rows, and returns the stats tree — one line per operator, PostgreSQL
/// style.
Result<SqlResult> RunExplainAnalyze(Database* db, ExecContext* ctx,
                                    const SelectStmt& stmt) {
  QueryStats qs;
  ctx->set_analyze(&qs);
  Result<SqlResult> run = RunSelect(db, ctx, stmt);
  ctx->set_analyze(nullptr);
  MICROSPEC_RETURN_NOT_OK(run.status());
  SqlResult result;
  result.columns = {"QUERY PLAN"};
  for (std::string& line : qs.ToLines()) {
    result.rows.push_back({std::move(line)});
  }
  return result;
}

}  // namespace

std::string SqlResult::ToString() const {
  std::vector<size_t> width(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) width[i] = columns[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += i == 0 ? "| " : " | ";
      out += row[i];
      out.append(width[i] - row[i].size(), ' ');
    }
    out += " |\n";
  };
  if (!columns.empty()) {
    emit_row(columns);
    out += "|";
    for (size_t i = 0; i < columns.size(); ++i) {
      out.append(width[i] + 2, '-');
      out += "|";
    }
    out += "\n";
  }
  for (const auto& row : rows) emit_row(row);
  return out;
}

namespace {

/// The plain statement dispatch (kDdl span is the one trace concern here:
/// CREATE TABLE's body includes relation-bee forging, worth its own span).
Result<SqlResult> Dispatch(Database* db, ExecContext* ctx,
                           const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      trace::SpanScope ddl(ctx->trace(), trace::SpanKind::kDdl,
                           "create table " + stmt.create.table);
      return RunCreate(db, stmt.create);
    }
    case Statement::Kind::kInsert:
      return RunInsert(db, ctx, stmt.insert);
    case Statement::Kind::kSelect:
      return stmt.explain_analyze ? RunExplainAnalyze(db, ctx, stmt.select)
                                  : RunSelect(db, ctx, stmt.select);
  }
  return Status::Internal("unreachable statement kind");
}

const char* StatementLabel(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable:
      return "create table";
    case Statement::Kind::kInsert:
      return "insert";
    case Statement::Kind::kSelect:
      return stmt.explain_analyze ? "explain analyze" : "select";
  }
  return "statement";
}

}  // namespace

Result<SqlResult> ExecuteSql(Database* db, ExecContext* ctx,
                             const std::string& sql) {
  ExecHints hints;
  hints.sql = &sql;
  hints.parse_start_ns = telemetry::NowNs();
  MICROSPEC_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  hints.parse_end_ns = telemetry::NowNs();
  return ExecuteParsed(db, ctx, stmt, hints);
}

Result<SqlResult> ExecuteParsed(Database* db, ExecContext* ctx,
                                const Statement& stmt) {
  return ExecuteParsed(db, ctx, stmt, ExecHints{});
}

Result<SqlResult> ExecuteParsed(Database* db, ExecContext* ctx,
                                const Statement& stmt,
                                const ExecHints& hints) {
  if (hints.parse_end_ns > hints.parse_start_ns) {
    ParseNs()->Observe(hints.parse_end_ns - hints.parse_start_ns);
  }
  trace::Tracer* tracer = db->tracer();
  // Ownership: a trace pre-installed on the context (the server's per-
  // session scaffold) is the caller's to publish; otherwise sampling is
  // decided — and the finished trace published — right here. The untraced
  // path through this block is one counter bump and two null tests.
  const trace::TraceContext preset = ctx->trace();
  std::shared_ptr<trace::Trace> owned;
  if (!preset) owned = tracer->MaybeSample();
  trace::Trace* tr = preset ? preset.trace : owned.get();
  if (tr == nullptr) return Dispatch(db, ctx, stmt);

  // Statement span. BeginAt so it contains the parse (or statement-cache
  // lookup) the caller timed before execution was reached.
  const uint64_t stmt_start = hints.parse_start_ns != 0 ? hints.parse_start_ns
                                                        : telemetry::NowNs();
  if (hints.sql != nullptr) tr->set_sql(*hints.sql);
  const uint32_t stmt_span =
      tr->BeginAt(preset.parent, trace::SpanKind::kStatement,
                  StatementLabel(stmt), stmt_start);
  if (hints.parse_end_ns > hints.parse_start_ns) {
    tr->AddComplete(stmt_span, trace::SpanKind::kParse, "parse",
                    hints.parse_start_ns, hints.parse_end_ns);
  }
  ctx->set_trace(trace::TraceContext{tr, stmt_span});

  // Collect the plan-stats tree for sampled plain SELECTs so a slow
  // statement can attach its EXPLAIN ANALYZE rendering. EXPLAIN ANALYZE
  // itself (and any caller-installed collector) already has one.
  std::unique_ptr<QueryStats> qs;
  if (stmt.kind == Statement::Kind::kSelect && !stmt.explain_analyze &&
      ctx->analyze() == nullptr) {
    qs = std::make_unique<QueryStats>();
    ctx->set_analyze(qs.get());
  }

  Result<SqlResult> run = Dispatch(db, ctx, stmt);

  if (qs != nullptr) ctx->set_analyze(nullptr);
  ctx->set_trace(preset);
  tr->End(stmt_span);
  const uint64_t now = telemetry::NowNs();
  const uint64_t total_ns = now - stmt_start;
  if (total_ns >= tracer->slow_query_ns()) {
    trace::SlowQuery slow;
    slow.trace_id = tr->trace_id();
    slow.ts_ns = now;
    slow.total_ns = total_ns;
    slow.parse_ns = tr->TotalNs(trace::SpanKind::kParse);
    slow.plan_ns = tr->TotalNs(trace::SpanKind::kPlan);
    slow.exec_ns = tr->TotalNs(trace::SpanKind::kExec);
    slow.sql = hints.sql != nullptr ? *hints.sql : tr->sql();
    if (qs != nullptr) {
      for (std::string& line : qs->ToLines()) {
        slow.analyze += line;
        slow.analyze += '\n';
      }
    }
    tracer->RecordSlow(std::move(slow));
    SlowQueriesTotal()->Add(1);
  }
  if (owned != nullptr) tracer->Publish(std::move(owned));
  return run;
}

}  // namespace microspec::sqlfe
