#ifndef MICROSPEC_SQLFE_ENGINE_H_
#define MICROSPEC_SQLFE_ENGINE_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "sqlfe/parser.h"

namespace microspec::sqlfe {

/// Result of one SQL statement: column names and rendered rows for SELECT,
/// affected-row count for INSERT, both empty for CREATE TABLE.
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  uint64_t affected = 0;

  /// Pretty-prints as an aligned text table.
  std::string ToString() const;
};

/// Parses, binds, and executes one SQL statement against `db` using the
/// session options of `ctx` — so SELECTs run through whatever bee routines
/// the session enables, and INSERTs go through the SCL/tuple-bee form path.
///
/// Dates are day numbers: DATE columns accept integer literals or
/// 'YYYY-MM-DD' strings interpreted with the engine's simplified calendar
/// (365-day years, 30-day months — matching the TPC-H kit).
Result<SqlResult> ExecuteSql(Database* db, ExecContext* ctx,
                             const std::string& sql);

/// Executes an already-parsed statement. This is the prepared-statement
/// entry point: the server front door parses once into its shared statement
/// cache and runs the cached AST through here for every later execution,
/// under whatever session context each connection holds. Thread-safe for
/// concurrent callers sharing one `const Statement` (execution never
/// mutates the AST).
Result<SqlResult> ExecuteParsed(Database* db, ExecContext* ctx,
                                const Statement& stmt);

}  // namespace microspec::sqlfe

#endif  // MICROSPEC_SQLFE_ENGINE_H_
