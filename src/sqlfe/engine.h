#ifndef MICROSPEC_SQLFE_ENGINE_H_
#define MICROSPEC_SQLFE_ENGINE_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "sqlfe/parser.h"

namespace microspec::sqlfe {

/// Result of one SQL statement: column names and rendered rows for SELECT,
/// affected-row count for INSERT, both empty for CREATE TABLE.
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  uint64_t affected = 0;

  /// Pretty-prints as an aligned text table.
  std::string ToString() const;
};

/// Parses, binds, and executes one SQL statement against `db` using the
/// session options of `ctx` — so SELECTs run through whatever bee routines
/// the session enables, and INSERTs go through the SCL/tuple-bee form path.
///
/// Dates are day numbers: DATE columns accept integer literals or
/// 'YYYY-MM-DD' strings interpreted with the engine's simplified calendar
/// (365-day years, 30-day months — matching the TPC-H kit).
Result<SqlResult> ExecuteSql(Database* db, ExecContext* ctx,
                             const std::string& sql);

/// Per-statement context a caller that did work *before* execution threads
/// through ExecuteParsed — the server parses (or hits its statement cache)
/// before executing, and the trace's statement span must contain that
/// window. All fields optional; a default ExecHints adds nothing.
struct ExecHints {
  /// Original SQL text, for the trace and the slow-query log.
  const std::string* sql = nullptr;
  /// Parse / statement-cache-lookup window (telemetry::NowNs clock).
  uint64_t parse_start_ns = 0;
  uint64_t parse_end_ns = 0;
};

/// Executes an already-parsed statement. This is the prepared-statement
/// entry point: the server front door parses once into its shared statement
/// cache and runs the cached AST through here for every later execution,
/// under whatever session context each connection holds. Thread-safe for
/// concurrent callers sharing one `const Statement` (execution never
/// mutates the AST).
///
/// Tracing (DESIGN.md §10): when `db`'s tracer samples this statement (or
/// the caller pre-installed a session trace on `ctx`), execution emits a
/// statement → parse/plan/exec → operator span tree and the statement is
/// checked against the slow-query threshold on completion. A caller-
/// installed trace is the caller's to publish; otherwise sampling and
/// publication both happen here.
Result<SqlResult> ExecuteParsed(Database* db, ExecContext* ctx,
                                const Statement& stmt);
Result<SqlResult> ExecuteParsed(Database* db, ExecContext* ctx,
                                const Statement& stmt, const ExecHints& hints);

}  // namespace microspec::sqlfe

#endif  // MICROSPEC_SQLFE_ENGINE_H_
