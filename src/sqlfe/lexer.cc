#include "sqlfe/lexer.h"

#include <cctype>

namespace microspec::sqlfe {

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(sql[i]))));
        ++i;
      }
      tokens.push_back(Token{TokenKind::kIdent, std::move(word), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string num;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        num.push_back(sql[i]);
        ++i;
      }
      tokens.push_back(Token{is_float ? TokenKind::kFloat : TokenKind::kInt,
                             std::move(num), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(start));
      }
      tokens.push_back(Token{TokenKind::kString, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            Token{TokenKind::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),*=<>+-/.;";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at byte " + std::to_string(start));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace microspec::sqlfe
