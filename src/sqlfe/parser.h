#ifndef MICROSPEC_SQLFE_PARSER_H_
#define MICROSPEC_SQLFE_PARSER_H_

#include <string>

#include "common/result.h"
#include "sqlfe/ast.h"

namespace microspec::sqlfe {

/// Parses one SQL statement (optionally ';'-terminated). Supported grammar —
/// deliberately the subset the engine executes natively:
///
///   CREATE TABLE t (col TYPE [NOT NULL] [LOW CARDINALITY], ...)
///     TYPE := BOOLEAN | INT | INTEGER | BIGINT | DOUBLE | FLOAT | DATE
///           | CHAR(n) | VARCHAR
///   INSERT INTO t VALUES (lit, ...)[, (lit, ...)]...
///   SELECT <* | expr [AS name], ...> FROM t
///     [JOIN t2 ON a = b]...
///     [WHERE predicate]
///     [GROUP BY col, ...]
///     [ORDER BY col [DESC], ...]
///     [LIMIT n]
///
/// Predicates: comparisons, AND/OR/NOT, BETWEEN, LIKE/NOT LIKE, IN (...).
/// Aggregates: COUNT(*), COUNT(x), SUM, AVG, MIN, MAX.
Result<Statement> Parse(const std::string& sql);

}  // namespace microspec::sqlfe

#endif  // MICROSPEC_SQLFE_PARSER_H_
