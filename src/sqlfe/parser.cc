#include "sqlfe/parser.h"

#include <cstdlib>

#include "sqlfe/lexer.h"

namespace microspec::sqlfe {

namespace {

/// Recursive-descent parser over the token stream. Methods return Status and
/// write into output parameters; `pos_` only advances on successful matches.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (MatchIdent("explain")) {
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("analyze"));
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("select"));
      stmt.kind = Statement::Kind::kSelect;
      stmt.explain_analyze = true;
      MICROSPEC_RETURN_NOT_OK(ParseSelect(&stmt.select));
      (void)MatchSymbol(";");
      if (!AtEnd()) return Error("trailing input after statement");
      return stmt;
    }
    if (MatchIdent("create")) {
      stmt.kind = Statement::Kind::kCreateTable;
      MICROSPEC_RETURN_NOT_OK(ParseCreate(&stmt.create));
    } else if (MatchIdent("insert")) {
      stmt.kind = Statement::Kind::kInsert;
      MICROSPEC_RETURN_NOT_OK(ParseInsert(&stmt.insert));
    } else if (MatchIdent("select")) {
      stmt.kind = Statement::Kind::kSelect;
      MICROSPEC_RETURN_NOT_OK(ParseSelect(&stmt.select));
    } else {
      return Error("expected CREATE, INSERT, or SELECT");
    }
    (void)MatchSymbol(";");
    if (!AtEnd()) return Error("trailing input after statement");
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchIdent(const char* kw) {
    if (Peek().Is(TokenKind::kIdent, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().Is(TokenKind::kSymbol, sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectIdent(const char* kw) {
    if (!MatchIdent(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) return Error(std::string("expected '") + sym + "'");
    return Status::OK();
  }
  Result<std::string> ExpectName() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    return tokens_[pos_++].text;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error near byte " +
                                   std::to_string(Peek().pos) + ": " + msg +
                                   " (got '" + Peek().text + "')");
  }

  /// --- CREATE TABLE ----------------------------------------------------------

  Status ParseCreate(CreateTableStmt* out) {
    MICROSPEC_RETURN_NOT_OK(ExpectIdent("table"));
    MICROSPEC_ASSIGN_OR_RETURN(out->table, ExpectName());
    MICROSPEC_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      ColumnDef col;
      MICROSPEC_ASSIGN_OR_RETURN(col.name, ExpectName());
      MICROSPEC_RETURN_NOT_OK(ParseType(&col));
      for (;;) {
        if (MatchIdent("not")) {
          MICROSPEC_RETURN_NOT_OK(ExpectIdent("null"));
          col.not_null = true;
        } else if (MatchIdent("low")) {
          MICROSPEC_RETURN_NOT_OK(ExpectIdent("cardinality"));
          col.low_cardinality = true;
        } else {
          break;
        }
      }
      out->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    return ExpectSymbol(")");
  }

  Status ParseType(ColumnDef* col) {
    MICROSPEC_ASSIGN_OR_RETURN(std::string type, ExpectName());
    if (type == "boolean" || type == "bool") {
      col->type = TypeId::kBool;
    } else if (type == "int" || type == "integer") {
      col->type = TypeId::kInt32;
    } else if (type == "bigint") {
      col->type = TypeId::kInt64;
    } else if (type == "double" || type == "float") {
      col->type = TypeId::kFloat64;
    } else if (type == "date") {
      col->type = TypeId::kDate;
    } else if (type == "varchar") {
      col->type = TypeId::kVarchar;
      if (MatchSymbol("(")) {  // length accepted and ignored
        ++pos_;
        MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
      }
    } else if (type == "char") {
      col->type = TypeId::kChar;
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol("("));
      if (Peek().kind != TokenKind::kInt) return Error("expected char length");
      col->char_len = std::atoi(tokens_[pos_++].text.c_str());
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      return Error("unknown type " + type);
    }
    return Status::OK();
  }

  /// --- INSERT ----------------------------------------------------------------

  Status ParseInsert(InsertStmt* out) {
    MICROSPEC_RETURN_NOT_OK(ExpectIdent("into"));
    MICROSPEC_ASSIGN_OR_RETURN(out->table, ExpectName());
    MICROSPEC_RETURN_NOT_OK(ExpectIdent("values"));
    do {
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<SqlExprPtr> row;
      do {
        MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lit, ParseLiteral());
        row.push_back(std::move(lit));
      } while (MatchSymbol(","));
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
      out->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return Status::OK();
  }

  Result<SqlExprPtr> ParseLiteral() {
    auto e = std::make_unique<SqlExpr>();
    bool negative = MatchSymbol("-");
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt) {
      e->kind = SqlExprKind::kIntLit;
      e->text = (negative ? "-" : "") + t.text;
    } else if (t.kind == TokenKind::kFloat) {
      e->kind = SqlExprKind::kFloatLit;
      e->text = (negative ? "-" : "") + t.text;
    } else if (t.kind == TokenKind::kString) {
      if (negative) return Error("'-' before string literal");
      e->kind = SqlExprKind::kStringLit;
      e->text = t.text;
    } else if (t.Is(TokenKind::kIdent, "null")) {
      if (negative) return Error("'-' before NULL");
      e->kind = SqlExprKind::kColumn;
      e->text = "null";
    } else if (t.Is(TokenKind::kIdent, "true") ||
               t.Is(TokenKind::kIdent, "false")) {
      e->kind = SqlExprKind::kIntLit;
      e->text = t.text == "true" ? "1" : "0";
    } else {
      return Error("expected literal");
    }
    ++pos_;
    return e;
  }

  /// --- SELECT ----------------------------------------------------------------

  Status ParseSelect(SelectStmt* out) {
    if (!MatchSymbol("*")) {
      do {
        SelectItem item;
        MICROSPEC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchIdent("as")) {
          MICROSPEC_ASSIGN_OR_RETURN(item.alias, ExpectName());
        } else if (item.expr->kind == SqlExprKind::kColumn) {
          item.alias = item.expr->text;
        } else {
          item.alias = "col" + std::to_string(out->items.size());
        }
        out->items.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    MICROSPEC_RETURN_NOT_OK(ExpectIdent("from"));
    MICROSPEC_ASSIGN_OR_RETURN(out->from, ExpectName());
    while (MatchIdent("join")) {
      JoinClause join;
      MICROSPEC_ASSIGN_OR_RETURN(join.table, ExpectName());
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("on"));
      MICROSPEC_ASSIGN_OR_RETURN(join.left_col, ParseQualifiedName());
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol("="));
      MICROSPEC_ASSIGN_OR_RETURN(join.right_col, ParseQualifiedName());
      out->joins.push_back(std::move(join));
    }
    if (MatchIdent("where")) {
      MICROSPEC_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    if (MatchIdent("group")) {
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("by"));
      do {
        MICROSPEC_ASSIGN_OR_RETURN(std::string col, ParseQualifiedName());
        out->group_by.push_back(std::move(col));
      } while (MatchSymbol(","));
    }
    if (MatchIdent("order")) {
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("by"));
      do {
        OrderItem item;
        MICROSPEC_ASSIGN_OR_RETURN(item.column, ParseQualifiedName());
        if (MatchIdent("desc")) {
          item.desc = true;
        } else {
          (void)MatchIdent("asc");
        }
        out->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchIdent("limit")) {
      if (Peek().kind != TokenKind::kInt) return Error("expected LIMIT count");
      out->limit = std::strtoull(tokens_[pos_++].text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  /// table.column is accepted; only the column part is kept (names are
  /// unique across the supported join shapes).
  Result<std::string> ParseQualifiedName() {
    MICROSPEC_ASSIGN_OR_RETURN(std::string name, ExpectName());
    if (MatchSymbol(".")) {
      MICROSPEC_ASSIGN_OR_RETURN(name, ExpectName());
    }
    return name;
  }

  /// expr        := or_expr
  /// or_expr     := and_expr (OR and_expr)*
  /// and_expr    := not_expr (AND not_expr)*
  /// not_expr    := [NOT] predicate
  /// predicate   := additive [cmp additive | BETWEEN .. AND ..
  ///                | [NOT] LIKE 'p' | [NOT] IN (...)]
  /// additive    := term ((+|-) term)*
  /// term        := factor ((*|/) factor)*
  /// factor      := literal | name | aggregate | ( expr )
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
    if (!Peek().Is(TokenKind::kIdent, "or")) return lhs;
    auto node = std::make_unique<SqlExpr>();
    node->kind = SqlExprKind::kOr;
    node->children.push_back(std::move(lhs));
    while (MatchIdent("or")) {
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<SqlExprPtr> ParseAnd() {
    MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
    if (!Peek().Is(TokenKind::kIdent, "and")) return lhs;
    auto node = std::make_unique<SqlExpr>();
    node->kind = SqlExprKind::kAnd;
    node->children.push_back(std::move(lhs));
    while (MatchIdent("and")) {
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<SqlExprPtr> ParseNot() {
    if (MatchIdent("not")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kNot;
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr child, ParseNot());
      node->children.push_back(std::move(child));
      return node;
    }
    return ParsePredicate();
  }

  Result<SqlExprPtr> ParsePredicate() {
    MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAdditive());

    bool negated = false;
    size_t save = pos_;
    if (MatchIdent("not")) {
      if (Peek().Is(TokenKind::kIdent, "like") ||
          Peek().Is(TokenKind::kIdent, "in")) {
        negated = true;
      } else {
        pos_ = save;  // the NOT belongs to an outer context
        return lhs;
      }
    }

    if (MatchIdent("between")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBetween;
      node->lhs = std::move(lhs);
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lo, ParseAdditive());
      MICROSPEC_RETURN_NOT_OK(ExpectIdent("and"));
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr hi, ParseAdditive());
      node->children.push_back(std::move(lo));
      node->children.push_back(std::move(hi));
      return node;
    }
    if (MatchIdent("like")) {
      if (Peek().kind != TokenKind::kString) {
        return Error("LIKE requires a string pattern");
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kLike;
      node->negated = negated;
      node->text = tokens_[pos_++].text;
      node->lhs = std::move(lhs);
      return node;
    }
    if (MatchIdent("in")) {
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol("("));
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kInList;
      node->negated = negated;
      node->lhs = std::move(lhs);
      do {
        MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr item, ParseLiteral());
        node->children.push_back(std::move(item));
      } while (MatchSymbol(","));
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
      return node;
    }

    static const std::pair<const char*, CmpOp> kOps[] = {
        {"=", CmpOp::kEq},  {"<>", CmpOp::kNe}, {"<=", CmpOp::kLe},
        {">=", CmpOp::kGe}, {"<", CmpOp::kLt},  {">", CmpOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (MatchSymbol(sym)) {
        auto node = std::make_unique<SqlExpr>();
        node->kind = SqlExprKind::kCmp;
        node->cmp = op;
        node->lhs = std::move(lhs);
        MICROSPEC_ASSIGN_OR_RETURN(node->rhs, ParseAdditive());
        return node;
      }
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAdditive() {
    MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseTerm());
    for (;;) {
      ArithOp op;
      if (MatchSymbol("+")) {
        op = ArithOp::kAdd;
      } else if (MatchSymbol("-")) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kArith;
      node->arith = op;
      node->lhs = std::move(lhs);
      MICROSPEC_ASSIGN_OR_RETURN(node->rhs, ParseTerm());
      lhs = std::move(node);
    }
  }

  Result<SqlExprPtr> ParseTerm() {
    MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseFactor());
    for (;;) {
      ArithOp op;
      if (MatchSymbol("*")) {
        op = ArithOp::kMul;
      } else if (MatchSymbol("/")) {
        op = ArithOp::kDiv;
      } else {
        return lhs;
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kArith;
      node->arith = op;
      node->lhs = std::move(lhs);
      MICROSPEC_ASSIGN_OR_RETURN(node->rhs, ParseFactor());
      lhs = std::move(node);
    }
  }

  Result<SqlExprPtr> ParseFactor() {
    if (MatchSymbol("(")) {
      MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt || t.kind == TokenKind::kFloat ||
        t.kind == TokenKind::kString ||
        (t.kind == TokenKind::kSymbol && t.text == "-")) {
      return ParseLiteral();
    }
    if (t.kind == TokenKind::kIdent) {
      static const std::pair<const char*, SqlAgg> kAggs[] = {
          {"count", SqlAgg::kCount}, {"sum", SqlAgg::kSum},
          {"avg", SqlAgg::kAvg},     {"min", SqlAgg::kMin},
          {"max", SqlAgg::kMax}};
      for (const auto& [name, agg] : kAggs) {
        if (t.text == name && tokens_[pos_ + 1].Is(TokenKind::kSymbol, "(")) {
          pos_ += 2;
          auto node = std::make_unique<SqlExpr>();
          node->kind = SqlExprKind::kAggregate;
          node->agg = agg;
          if (agg == SqlAgg::kCount && MatchSymbol("*")) {
            node->agg = SqlAgg::kCountStar;
          } else {
            MICROSPEC_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
            node->children.push_back(std::move(arg));
          }
          MICROSPEC_RETURN_NOT_OK(ExpectSymbol(")"));
          return node;
        }
      }
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kColumn;
      MICROSPEC_ASSIGN_OR_RETURN(node->text, ParseQualifiedName());
      return node;
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  MICROSPEC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace microspec::sqlfe
